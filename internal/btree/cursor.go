package btree

import (
	"encoding/binary"
	"fmt"
	"math"

	"dualcdb/internal/pagestore"
)

// leafView builds the zero-copy view of a pinned leaf for a sweep,
// routing the header parse through the view cache when enabled. The
// returned LeafView borrows leaf's frame: the caller must not release the
// frame until it is done with the view (sweeps call visit first, release
// after). The meta is returned alongside so the sweep can follow the
// chain links after the frame is gone — PageIDs are values, not borrows.
func (t *Tree) leafView(leaf node) (LeafView, viewMeta) {
	t.stats.leavesVisited.Add(1)
	var m viewMeta
	if t.cache != nil {
		m = t.cache.lookup(leaf)
	} else {
		m = parseMeta(leaf.data, leaf.frame.Version())
	}
	return LeafView{Page: leaf.id(), v: leaf.view(m)}, m
}

// chainNextAsc and chainNextDesc extract a leaf's forward link from its
// raw page image for pool chain readahead; anything that is not a leaf
// page of the current layout ends the chain.
func chainNextAsc(page []byte) pagestore.PageID {
	if len(page) < headerSize || page[offType] != typeLeaf || page[offLayout] != layoutVersion {
		return pagestore.InvalidPage
	}
	return pagestore.PageID(binary.LittleEndian.Uint32(page[offNext : offNext+4]))
}

func chainNextDesc(page []byte) pagestore.PageID {
	if len(page) < headerSize || page[offType] != typeLeaf || page[offLayout] != layoutVersion {
		return pagestore.InvalidPage
	}
	return pagestore.PageID(binary.LittleEndian.Uint32(page[offPrev : offPrev+4]))
}

// nextLeafTracked pins the sweep's next leaf. With Config.Readahead > 1
// the pool speculatively batch-reads the upcoming sibling run in the sweep
// direction (dir = +1 ascending, −1 descending), along chain links it has
// learned from prior sweeps where known.
func (t *Tree) nextLeafTracked(id pagestore.PageID, dir int, rc *pagestore.ReadCounter) (node, error) {
	if t.cfg.Readahead > 1 {
		next := chainNextAsc
		if dir < 0 {
			next = chainNextDesc
		}
		f, err := t.pool.GetChainTracked(id, t.cfg.Readahead, dir, next, rc)
		if err != nil {
			return node{}, err
		}
		return wrap(f), nil
	}
	return t.getTracked(id, rc)
}

// VisitLeavesAsc visits leaves in ascending key order starting at the leaf
// that owns key `from` (with the smallest TID), continuing while visit
// returns true. This is the paper's upward leaf sweep; each visited leaf
// costs one page access. The LeafView passed to visit is valid only for
// the duration of the call — its frame is released when visit returns.
func (t *Tree) VisitLeavesAsc(from float64, visit func(LeafView) bool) error {
	return t.VisitLeavesAscTracked(from, nil, visit)
}

// VisitLeavesAscTracked is VisitLeavesAsc with every page read of the
// descent and the leaf chain charged to rc — the per-query accounting that
// stays exact when several sweeps share the buffer pool.
func (t *Tree) VisitLeavesAscTracked(from float64, rc *pagestore.ReadCounter, visit func(LeafView) bool) error {
	leaf, err := t.findLeafTracked(Entry{Key: from, TID: 0}, rc)
	if err != nil {
		return err
	}
	for {
		lv, m := t.leafView(leaf)
		// Resolve the forward link through this version's chain overrides:
		// a shared leaf's bytes may predate a neighbor's clone.
		next := t.effNext(leaf.id(), m.next)
		if t.cfg.Readahead > 1 {
			t.pool.NoteChainLink(leaf.id(), next, +1)
		}
		more := visit(lv)
		leaf.release()
		if !more || next == pagestore.InvalidPage {
			return nil
		}
		if leaf, err = t.nextLeafTracked(next, +1, rc); err != nil {
			return err
		}
	}
}

// VisitLeavesDesc visits leaves in descending key order starting at the
// leaf that owns key `from` (with the largest TID) — the downward sweep.
// The LeafView lifetime rule of VisitLeavesAsc applies.
func (t *Tree) VisitLeavesDesc(from float64, visit func(LeafView) bool) error {
	return t.VisitLeavesDescTracked(from, nil, visit)
}

// VisitLeavesDescTracked is VisitLeavesDesc with per-query I/O accounting
// (see VisitLeavesAscTracked).
func (t *Tree) VisitLeavesDescTracked(from float64, rc *pagestore.ReadCounter, visit func(LeafView) bool) error {
	leaf, err := t.findLeafTracked(Entry{Key: from, TID: math.MaxUint32}, rc)
	if err != nil {
		return err
	}
	for {
		lv, m := t.leafView(leaf)
		prev := t.effPrev(leaf.id(), m.prev)
		if t.cfg.Readahead > 1 {
			t.pool.NoteChainLink(leaf.id(), prev, -1)
		}
		more := visit(lv)
		leaf.release()
		if !more || prev == pagestore.InvalidPage {
			return nil
		}
		if leaf, err = t.nextLeafTracked(prev, -1, rc); err != nil {
			return err
		}
	}
}

// AscendRange calls fn for every entry with from ≤ key ≤ to in ascending
// order; fn returning false stops the scan.
func (t *Tree) AscendRange(from, to float64, fn func(Entry) bool) error {
	return t.VisitLeavesAsc(from, func(lv LeafView) bool {
		for i, n := 0, lv.Len(); i < n; i++ {
			if lv.Key(i) < from {
				continue
			}
			if lv.Key(i) > to {
				return false
			}
			if !fn(lv.Entry(i)) {
				return false
			}
		}
		return true
	})
}

// ScanAll returns every entry in key order (tests and rebuilds).
func (t *Tree) ScanAll() ([]Entry, error) {
	var out []Entry
	err := t.VisitLeavesAsc(math.Inf(-1), func(lv LeafView) bool {
		out = lv.AppendEntries(out)
		return true
	})
	return out, err
}

// MergeHandicap folds value into handicap slot `slot` of the leaf that owns
// routeKey — the leaf whose key interval the paper associates the value
// with. The slot's kind decides the merge (min for low_j, max for high_j).
func (t *Tree) MergeHandicap(routeKey float64, slot int, value float64) error {
	var leaf node
	var err error
	if t.cow != nil {
		// Shadow the descent path so the handicap write lands on a
		// batch-owned copy of the leaf.
		leaf, err = t.findLeafWritable(Entry{Key: routeKey, TID: 0})
	} else {
		leaf, err = t.findLeaf(Entry{Key: routeKey, TID: 0})
	}
	if err != nil {
		return err
	}
	defer leaf.release()
	kind := t.cfg.HandicapKinds[slot]
	leaf.setHandicap(slot, kind.Combine(leaf.handicap(slot), value))
	return nil
}

// ResetHandicaps restores every leaf's handicap slots to their identity
// values, ahead of an exact rebuild. Under an open copy-on-write batch the
// whole tree is shadowed (resetHandicapsCOW): a chain walk cannot clone
// leaves without orphaning their parents' child links.
func (t *Tree) ResetHandicaps() error {
	if t.cow != nil {
		return t.resetHandicapsCOW()
	}
	leaf, err := t.findLeaf(Entry{Key: math.Inf(-1), TID: 0})
	if err != nil {
		return err
	}
	for {
		for s, k := range t.cfg.HandicapKinds {
			leaf.setHandicap(s, k.Identity())
		}
		next := t.effNext(leaf.id(), leaf.next())
		leaf.release()
		if next == pagestore.InvalidPage {
			return nil
		}
		if leaf, err = t.get(next); err != nil {
			return err
		}
	}
}

// BulkLoad builds the tree from entries that are already sorted in
// composite order. The tree must be empty. Leaves are packed to the
// configured fill factor, which is how the experiment trees are built.
func (t *Tree) BulkLoad(entries []Entry) error {
	if t.size != 0 {
		return ErrNotEmpty
	}
	if t.cow != nil {
		return fmt.Errorf("btree: BulkLoad inside a copy-on-write batch")
	}
	if len(entries) == 0 {
		return nil
	}
	perLeaf := int(float64(t.leafCap) * t.cfg.FillFactor)
	if perLeaf < 1 {
		perLeaf = 1
	}
	// Reuse the existing empty root leaf as the first leaf.
	first, err := t.get(t.root)
	if err != nil {
		return err
	}
	type levelEntry struct {
		sep  Entry // smallest entry in the subtree (first leaf entry)
		page pagestore.PageID
	}
	var leaves []levelEntry
	cur := first
	for i := 0; i < len(entries); {
		n := perLeaf
		if rem := len(entries) - i; rem < n {
			n = rem
		}
		// Avoid a dangling underfull final leaf: balance the last two.
		if rem := len(entries) - i; rem > n && rem-n < t.minLeaf() {
			n = rem - t.minLeaf()
		}
		for j := 0; j < n; j++ {
			cur.setEntry(j, entries[i+j])
		}
		cur.setCount(n)
		leaves = append(leaves, levelEntry{sep: entries[i], page: cur.id()})
		i += n
		if i < len(entries) {
			next, err := t.newLeaf()
			if err != nil {
				cur.release()
				return err
			}
			cur.setNext(next.id())
			next.setPrev(cur.id())
			cur.release()
			cur = next
		}
	}
	cur.release()
	t.size = len(entries)

	// Build internal levels bottom-up.
	level := leaves
	t.hgt = 1
	perInt := t.intCap // children per internal node ≤ intCap+1; use intCap separators
	for len(level) > 1 {
		var up []levelEntry
		for i := 0; i < len(level); {
			n := perInt + 1 // children in this node
			if rem := len(level) - i; rem < n {
				n = rem
			}
			if rem := len(level) - i; rem > n && rem-n < t.minInt()+1 {
				n = rem - (t.minInt() + 1)
			}
			if n < 1 {
				n = 1
			}
			in, err := t.newInternal()
			if err != nil {
				return err
			}
			in.setChild(0, level[i].page)
			for j := 1; j < n; j++ {
				in.insertSepAt(j-1, level[i+j].sep, level[i+j].page)
			}
			up = append(up, levelEntry{sep: level[i].sep, page: in.id()})
			in.release()
			i += n
		}
		level = up
		t.hgt++
	}
	t.root = level[0].page
	return nil
}

// CheckInvariants walks the whole tree verifying ordering, occupancy,
// separator consistency and leaf chaining; it returns a descriptive error
// on the first violation. Test-support API.
func (t *Tree) CheckInvariants() error {
	var prevLeaf pagestore.PageID
	var lastEntry *Entry
	count := 0
	var walk func(id pagestore.PageID, height int, lo, hi *Entry) error
	walk = func(id pagestore.PageID, height int, lo, hi *Entry) error {
		n, err := t.get(id)
		if err != nil {
			return err
		}
		defer n.release()
		if height == 1 {
			if !n.isLeaf() {
				return errf("page %d: expected leaf at height 1", id)
			}
			if id != t.root && n.count() < t.minLeaf() {
				return errf("leaf %d underfull: %d < %d", id, n.count(), t.minLeaf())
			}
			if got := t.effPrev(id, n.prev()); got != prevLeaf {
				return errf("leaf %d: prev = %d, want %d", id, got, prevLeaf)
			}
			for i := 0; i < n.count(); i++ {
				e := n.entry(i)
				if lastEntry != nil && e.Less(*lastEntry) {
					return errf("leaf %d: entry %v out of order after %v", id, e, *lastEntry)
				}
				if lo != nil && e.Less(*lo) {
					return errf("leaf %d: entry %v below separator %v", id, e, *lo)
				}
				if hi != nil && !e.Less(*hi) {
					return errf("leaf %d: entry %v not below separator %v", id, e, *hi)
				}
				ec := e
				lastEntry = &ec
				count++
			}
			prevLeaf = id
			return nil
		}
		if n.isLeaf() {
			return errf("page %d: unexpected leaf at height %d", id, height)
		}
		if id != t.root && n.count() < t.minInt() {
			return errf("internal %d underfull: %d < %d", id, n.count(), t.minInt())
		}
		if id == t.root && n.count() < 1 {
			return errf("internal root %d has no separators", id)
		}
		for i := 0; i <= n.count(); i++ {
			var clo, chi *Entry
			if i > 0 {
				s := n.sep(i - 1)
				clo = &s
			} else {
				clo = lo
			}
			if i < n.count() {
				s := n.sep(i)
				chi = &s
			} else {
				chi = hi
			}
			if err := walk(n.child(i), height-1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, t.hgt, nil, nil); err != nil {
		return err
	}
	if count != t.size {
		return errf("size mismatch: counted %d, recorded %d", count, t.size)
	}
	return nil
}

func errf(format string, args ...interface{}) error {
	return fmt.Errorf("btree: invariant violation: "+format, args...)
}
