package btree

import (
	"container/list"
	"sync"
	"sync/atomic"

	"dualcdb/internal/pagestore"
)

// DecodeStats counts decoded-node cache traffic. Resident is a gauge —
// the number of decoded nodes currently held — while the other fields
// are monotone counters.
type DecodeStats struct {
	Hits          uint64 // lookups served from a current decode
	Misses        uint64 // lookups for pages never decoded (or evicted)
	Invalidations uint64 // lookups that found a stale decode and refreshed it
	Evictions     uint64 // decodes dropped by the cache's capacity bound
	Resident      uint64 // decoded nodes currently cached
}

// Add accumulates other into s (for summing stats across trees).
func (s *DecodeStats) Add(o DecodeStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Invalidations += o.Invalidations
	s.Evictions += o.Evictions
	s.Resident += o.Resident
}

// decodedNode is the parsed form of one page: the slices that node.entries
// and node.handicaps would otherwise re-allocate on every visit, or an
// internal node's separators and child pointers. It is immutable once
// published and shared by concurrent sweeps; consumers must not modify it.
type decodedNode struct {
	version uint64
	leaf    bool

	// Leaf form.
	entries   []Entry
	handicaps []float64
	next      pagestore.PageID
	prev      pagestore.PageID

	// Internal form.
	seps     []Entry
	children []pagestore.PageID
}

// childIndex mirrors node.childIndex over the decoded separators.
func (d *decodedNode) childIndex(e Entry) int {
	lo, hi := 0, len(d.seps)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.Less(d.seps[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

const defaultDecodeCacheNodes = 4096

// evictScan bounds how many least-recently-used entries an eviction
// examines while looking for a victim whose page has also left the
// buffer pool.
const evictScan = 8

// cacheEntry is one LRU node: the decoded page plus the id that keys it
// (needed to delete the map entry when the list node is evicted).
type cacheEntry struct {
	id pagestore.PageID
	d  *decodedNode
}

// nodeCache caches decoded pages per tree, keyed by PageID and validated
// against the frame's version stamp (see pagestore.Frame.Version): a
// cached decode is served only while the pinned frame still reports the
// version the decode was taken under, so a page mutated through MarkDirty
// — or freed and reallocated — can never satisfy a lookup with stale
// contents.
//
// Capacity is bounded by LRU eviction tied to pool residency: every hit
// moves the entry to the front, so the inner nodes every descent touches
// never age out the way they did under the old FIFO ring, and eviction
// prefers victims whose backing page the buffer pool has itself evicted
// — those decodes are both the least likely to be reused and certain to
// be re-validated against a freshly read frame anyway.
type nodeCache struct {
	mu   sync.Mutex
	m    map[pagestore.PageID]*list.Element
	lru  *list.List // of *cacheEntry, most-recently used at front
	cap  int
	pool *pagestore.Pool

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
	evictions     atomic.Uint64
}

func newNodeCache(capacity int, pool *pagestore.Pool) *nodeCache {
	if capacity <= 0 {
		capacity = defaultDecodeCacheNodes
	}
	return &nodeCache{
		m:    make(map[pagestore.PageID]*list.Element),
		lru:  list.New(),
		cap:  capacity,
		pool: pool,
	}
}

// lookup returns the decoded form of the pinned node n, decoding and
// caching it when absent or stale.
func (c *nodeCache) lookup(n node) *decodedNode {
	v := n.frame.Version()
	id := n.id()
	c.mu.Lock()
	if el, ok := c.m[id]; ok {
		ce := el.Value.(*cacheEntry)
		if ce.d.version == v {
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			c.hits.Add(1)
			return ce.d
		}
		c.invalidations.Add(1)
	} else {
		c.misses.Add(1)
	}
	c.mu.Unlock()
	// Decode outside the lock: the page bytes are pinned by the caller and
	// the decode is immutable, so a concurrent lookup of the same id at
	// worst duplicates the work and the last insert wins.
	d := decodeNode(n, v)
	c.mu.Lock()
	if el, ok := c.m[id]; ok {
		el.Value.(*cacheEntry).d = d
		c.lru.MoveToFront(el)
	} else {
		for len(c.m) >= c.cap {
			c.evictLocked()
		}
		c.m[id] = c.lru.PushFront(&cacheEntry{id: id, d: d})
	}
	c.mu.Unlock()
	return d
}

// evictLocked drops one entry: it walks up to evictScan entries from the
// LRU tail and evicts the first whose page is no longer resident in the
// buffer pool; when every scanned page is still pool-resident (or the
// scan is exhausted) the true tail goes. Resident takes the page's pool
// shard lock, so the ordering here is cache mutex → shard mutex; the
// pool never calls back into the btree layer, so the order cannot invert.
func (c *nodeCache) evictLocked() {
	var victim *list.Element
	if c.pool != nil {
		el := c.lru.Back()
		for i := 0; i < evictScan && el != nil; i++ {
			if !c.pool.Resident(el.Value.(*cacheEntry).id) {
				victim = el
				break
			}
			el = el.Prev()
		}
	}
	if victim == nil {
		victim = c.lru.Back()
	}
	if victim == nil {
		return
	}
	delete(c.m, victim.Value.(*cacheEntry).id)
	c.lru.Remove(victim)
	c.evictions.Add(1)
}

func (c *nodeCache) stats() DecodeStats {
	c.mu.Lock()
	resident := len(c.m)
	c.mu.Unlock()
	return DecodeStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Evictions:     c.evictions.Load(),
		Resident:      uint64(resident),
	}
}

// decodeNode parses the node's page bytes under the given version stamp.
func decodeNode(n node, version uint64) *decodedNode {
	d := &decodedNode{version: version, leaf: n.isLeaf()}
	if d.leaf {
		d.entries = n.entries()
		d.handicaps = n.handicaps()
		d.next = n.next()
		d.prev = n.prev()
		return d
	}
	c := n.count()
	d.seps = make([]Entry, c)
	d.children = make([]pagestore.PageID, c+1)
	d.children[0] = n.child(0)
	for i := 0; i < c; i++ {
		d.seps[i] = n.sep(i)
		d.children[i+1] = n.child(i + 1)
	}
	return d
}
