package btree

import (
	"container/list"
	"sync"
	"sync/atomic"

	"dualcdb/internal/pagestore"
)

// DecodeStats counts view-meta cache traffic. Resident is a gauge — the
// number of parsed headers currently held — while the other fields are
// monotone counters. The name predates the zero-copy layout: a "decode"
// is now just a header parse (viewMeta), but the hit/miss semantics the
// harness and observability layers consume are unchanged.
type DecodeStats struct {
	Hits          uint64 // lookups served from a current parse
	Misses        uint64 // lookups for pages never parsed (or evicted)
	Invalidations uint64 // lookups that found a stale parse and refreshed it
	Evictions     uint64 // parses dropped by the cache's capacity bound
	Resident      uint64 // parsed headers currently cached
}

// Add accumulates other into s (for summing stats across trees).
func (s *DecodeStats) Add(o DecodeStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Invalidations += o.Invalidations
	s.Evictions += o.Evictions
	s.Resident += o.Resident
}

const defaultDecodeCacheNodes = 4096

// evictScan bounds how many least-recently-used entries an eviction
// examines while looking for a victim whose page has also left the
// buffer pool.
const evictScan = 8

// cacheEntry is one LRU node: the parsed header plus the id that keys it
// (needed to delete the map entry when the list node is evicted).
type cacheEntry struct {
	id pagestore.PageID
	m  viewMeta
}

// viewCache caches parsed page headers per tree, keyed by PageID and
// validated against the frame's version stamp (see
// pagestore.Frame.Version): a cached parse is served only while the
// pinned frame still reports the version it was taken under, so a page
// mutated through MarkDirty — or freed and reallocated — can never
// satisfy a lookup with stale offsets.
//
// Under the flat layout this cache holds no page content: entries,
// handicaps and separators are read in place through nodeView, and the
// cache's job shrinks to skipping the header parse plus recording the
// chain links a sweep needs after the frame is gone. Each entry is a few
// dozen bytes with no heap slices, so the cache itself never contributes
// to sweep allocation.
//
// Capacity is bounded by LRU eviction tied to pool residency: every hit
// moves the entry to the front, so the inner nodes every descent touches
// never age out, and eviction prefers victims whose backing page the
// buffer pool has itself evicted — those parses are both the least likely
// to be reused and certain to be re-validated against a freshly read
// frame anyway.
type viewCache struct {
	mu   sync.Mutex
	m    map[pagestore.PageID]*list.Element
	lru  *list.List // of *cacheEntry, most-recently used at front
	cap  int
	pool *pagestore.Pool

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
	evictions     atomic.Uint64
}

func newViewCache(capacity int, pool *pagestore.Pool) *viewCache {
	if capacity <= 0 {
		capacity = defaultDecodeCacheNodes
	}
	return &viewCache{
		m:    make(map[pagestore.PageID]*list.Element),
		lru:  list.New(),
		cap:  capacity,
		pool: pool,
	}
}

// lookup returns the parsed header of the pinned node n, parsing and
// caching it when absent or stale. The parse is cheap enough to run under
// the cache lock.
func (c *viewCache) lookup(n node) viewMeta {
	v := n.frame.Version()
	id := n.id()
	c.mu.Lock()
	if el, ok := c.m[id]; ok {
		ce := el.Value.(*cacheEntry)
		if ce.m.version == v {
			c.lru.MoveToFront(el)
			m := ce.m
			c.mu.Unlock()
			c.hits.Add(1)
			return m
		}
		m := parseMeta(n.data, v)
		ce.m = m
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		c.invalidations.Add(1)
		return m
	}
	m := parseMeta(n.data, v)
	for len(c.m) >= c.cap {
		c.evictLocked()
	}
	c.m[id] = c.lru.PushFront(&cacheEntry{id: id, m: m})
	c.mu.Unlock()
	c.misses.Add(1)
	return m
}

// evictLocked drops one entry: it walks up to evictScan entries from the
// LRU tail and evicts the first whose page is no longer resident in the
// buffer pool; when every scanned page is still pool-resident (or the
// scan is exhausted) the true tail goes. Resident takes the page's pool
// shard lock, so the ordering here is cache mutex → shard mutex; the
// pool never calls back into the btree layer, so the order cannot invert.
func (c *viewCache) evictLocked() {
	var victim *list.Element
	if c.pool != nil {
		el := c.lru.Back()
		for i := 0; i < evictScan && el != nil; i++ {
			if !c.pool.Resident(el.Value.(*cacheEntry).id) {
				victim = el
				break
			}
			el = el.Prev()
		}
	}
	if victim == nil {
		victim = c.lru.Back()
	}
	if victim == nil {
		return
	}
	delete(c.m, victim.Value.(*cacheEntry).id)
	c.lru.Remove(victim)
	c.evictions.Add(1)
}

func (c *viewCache) stats() DecodeStats {
	c.mu.Lock()
	resident := len(c.m)
	c.mu.Unlock()
	return DecodeStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Evictions:     c.evictions.Load(),
		Resident:      uint64(resident),
	}
}
