package btree

import (
	"sync"
	"sync/atomic"

	"dualcdb/internal/pagestore"
)

// DecodeStats counts decoded-node cache traffic. Resident is a gauge —
// the number of decoded nodes currently held — while the other fields
// are monotone counters.
type DecodeStats struct {
	Hits          uint64 // lookups served from a current decode
	Misses        uint64 // lookups for pages never decoded (or evicted)
	Invalidations uint64 // lookups that found a stale decode and refreshed it
	Evictions     uint64 // decodes dropped by the cache's capacity bound
	Resident      uint64 // decoded nodes currently cached
}

// Add accumulates other into s (for summing stats across trees).
func (s *DecodeStats) Add(o DecodeStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Invalidations += o.Invalidations
	s.Evictions += o.Evictions
	s.Resident += o.Resident
}

// decodedNode is the parsed form of one page: the slices that node.entries
// and node.handicaps would otherwise re-allocate on every visit, or an
// internal node's separators and child pointers. It is immutable once
// published and shared by concurrent sweeps; consumers must not modify it.
type decodedNode struct {
	version uint64
	leaf    bool

	// Leaf form.
	entries   []Entry
	handicaps []float64
	next      pagestore.PageID
	prev      pagestore.PageID

	// Internal form.
	seps     []Entry
	children []pagestore.PageID
}

// childIndex mirrors node.childIndex over the decoded separators.
func (d *decodedNode) childIndex(e Entry) int {
	lo, hi := 0, len(d.seps)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.Less(d.seps[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

const defaultDecodeCacheNodes = 4096

// nodeCache caches decoded pages per tree, keyed by PageID and validated
// against the frame's version stamp (see pagestore.Frame.Version): a
// cached decode is served only while the pinned frame still reports the
// version the decode was taken under, so a page mutated through MarkDirty
// — or freed and reallocated — can never satisfy a lookup with stale
// contents. Capacity is bounded by FIFO eviction; the hot inner nodes that
// every descent touches are re-decoded at worst once per round trip
// through the FIFO, which is already far off the hot path.
type nodeCache struct {
	mu   sync.RWMutex
	m    map[pagestore.PageID]*decodedNode
	fifo []pagestore.PageID // insertion order; live entries are at [head:]
	head int
	cap  int

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
	evictions     atomic.Uint64
}

func newNodeCache(capacity int) *nodeCache {
	if capacity <= 0 {
		capacity = defaultDecodeCacheNodes
	}
	return &nodeCache{m: make(map[pagestore.PageID]*decodedNode), cap: capacity}
}

// lookup returns the decoded form of the pinned node n, decoding and
// caching it when absent or stale.
func (c *nodeCache) lookup(n node) *decodedNode {
	v := n.frame.Version()
	id := n.id()
	c.mu.RLock()
	d := c.m[id]
	c.mu.RUnlock()
	if d != nil {
		if d.version == v {
			c.hits.Add(1)
			return d
		}
		c.invalidations.Add(1)
	} else {
		c.misses.Add(1)
	}
	d = decodeNode(n, v)
	c.mu.Lock()
	if _, ok := c.m[id]; !ok {
		// New id: make room first. Ids are appended only when absent from
		// the map and removed only by this loop, so each id has at most
		// one live fifo slot.
		for len(c.m) >= c.cap && c.head < len(c.fifo) {
			victim := c.fifo[c.head]
			c.head++
			if _, live := c.m[victim]; live {
				delete(c.m, victim)
				c.evictions.Add(1)
			}
		}
		if c.head > 64 && c.head > len(c.fifo)/2 {
			c.fifo = append(c.fifo[:0], c.fifo[c.head:]...)
			c.head = 0
		}
		c.fifo = append(c.fifo, id)
	}
	c.m[id] = d
	c.mu.Unlock()
	return d
}

func (c *nodeCache) stats() DecodeStats {
	c.mu.RLock()
	resident := len(c.m)
	c.mu.RUnlock()
	return DecodeStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Evictions:     c.evictions.Load(),
		Resident:      uint64(resident),
	}
}

// decodeNode parses the node's page bytes under the given version stamp.
func decodeNode(n node, version uint64) *decodedNode {
	d := &decodedNode{version: version, leaf: n.isLeaf()}
	if d.leaf {
		d.entries = n.entries()
		d.handicaps = n.handicaps()
		d.next = n.next()
		d.prev = n.prev()
		return d
	}
	c := n.count()
	d.seps = make([]Entry, c)
	d.children = make([]pagestore.PageID, c+1)
	d.children[0] = n.child(0)
	for i := 0; i < c; i++ {
		d.seps[i] = n.sep(i)
		d.children[i+1] = n.child(i + 1)
	}
	return d
}
