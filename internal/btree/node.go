// Package btree implements the disk-based B⁺-tree underlying the paper's
// dual-representation index (Sections 3 and 4): float64 keys with duplicate
// support via (key, tuple-id) composites, doubly linked leaves for upward
// and downward sweeps, bulk loading, and a configurable number of per-leaf
// auxiliary slots that hold the "handicap values" of technique T2
// (Section 4.2).
//
// Pages are managed through pagestore.Pool, so every traversal is charged
// to the shared I/O counters that the experiment harness reports. Sweeps
// read pages through nodeView (view.go) — a zero-copy overlay on the
// pinned frame's bytes — rather than materializing entries into slices.
package btree

import (
	"encoding/binary"
	"math"

	"dualcdb/internal/pagestore"
)

// Entry is one indexed value: a surface value (TOP^P or BOT^P at some
// slope) and the tuple it belongs to. Entries are ordered by (Key, TID);
// the TID tiebreak makes duplicates well ordered.
type Entry struct {
	Key float64
	TID uint32
}

// Less reports whether e precedes o in composite order.
func (e Entry) Less(o Entry) bool {
	if e.Key != o.Key { //dualvet:allow floatcmp — tree order must be an exact total order over the stored key bits
		return e.Key < o.Key
	}
	return e.TID < o.TID
}

// Compare orders entries in composite order for slices.SortFunc.
func (e Entry) Compare(o Entry) int {
	switch {
	case e.Less(o):
		return -1
	case o.Less(e):
		return 1
	default:
		return 0
	}
}

// SlotKind declares how a handicap slot combines values, which also fixes
// its identity element and its conservative merge direction:
// MinSlot accumulates minima (identity +Inf, e.g. the paper's low_j values),
// MaxSlot accumulates maxima (identity −Inf, e.g. high_j values).
type SlotKind int

const (
	// MinSlot accumulates minima; smaller is more conservative.
	MinSlot SlotKind = iota
	// MaxSlot accumulates maxima; larger is more conservative.
	MaxSlot
)

// Identity returns the slot's identity element.
func (k SlotKind) Identity() float64 {
	if k == MinSlot {
		return math.Inf(1)
	}
	return math.Inf(-1)
}

// Combine merges two slot values according to the kind.
func (k SlotKind) Combine(a, b float64) float64 {
	if k == MinSlot {
		return math.Min(a, b)
	}
	return math.Max(a, b)
}

// Page layout (format "DCDB0002"). Every node starts with a 16-byte header
// whose region offsets make the body self-describing — a reader slices the
// page in place instead of re-deriving offsets from a slot count:
//
//	[0]     node type (1 = leaf, 2 = internal)
//	[1]     layout version (currently 1)
//	[2:4]   count (uint16): entries in a leaf, separators in an internal node
//	[4:6]   hOff (uint16): offset of the handicap region (leaves) or of the
//	        leftmost child pointer (internal nodes); today always 16
//	[6:8]   eOff (uint16): offset of the entry region (leaves: hOff + 8·H,
//	        so H = (eOff−hOff)/8) or of the separator records (internal: 20)
//	[8:12]  next leaf page id (leaves only)
//	[12:16] prev leaf page id (leaves only)
//
// Leaf body:     handicap region at hOff (H × 8-byte floats), entry region
//
//	at eOff (count × 12-byte entries: key 8, tid 4).
//
// Internal body: child0 (4 bytes) at hOff, then count × 16-byte separator
//
//	records (sepKey 8, sepTID 4, rightChild 4) at eOff.
//
// All regions are fixed-width and offset-addressed, so nodeView (view.go)
// reads any field with one bounds-checked load off the pinned frame.
const (
	headerSize    = 16
	entrySize     = 12
	intRecSize    = 16
	typeLeaf      = 1
	typeInternal  = 2
	layoutVersion = 1

	offType   = 0
	offLayout = 1
	offCount  = 2
	offHOff   = 4
	offEOff   = 6
	offNext   = 8
	offPrev   = 12
)

type node struct {
	frame *pagestore.Frame
	data  []byte
}

func wrap(f *pagestore.Frame) node { return node{frame: f, data: f.Data()} }

func (n node) id() pagestore.PageID { return n.frame.ID() }
func (n node) isLeaf() bool         { return n.data[offType] == typeLeaf }
func (n node) count() int           { return int(binary.LittleEndian.Uint16(n.data[offCount : offCount+2])) }
func (n node) setCount(c int) {
	binary.LittleEndian.PutUint16(n.data[offCount:offCount+2], uint16(c))
	n.frame.MarkDirty()
}
func (n node) hOff() int { return int(binary.LittleEndian.Uint16(n.data[offHOff : offHOff+2])) }
func (n node) eOff() int { return int(binary.LittleEndian.Uint16(n.data[offEOff : offEOff+2])) }
func (n node) release()  { n.frame.Release() }

// --- Leaf accessors ---

func (n node) initLeaf(numHandicaps int, kinds []SlotKind) {
	n.data[offType] = typeLeaf
	n.data[offLayout] = layoutVersion
	binary.LittleEndian.PutUint16(n.data[offHOff:offHOff+2], uint16(headerSize))
	binary.LittleEndian.PutUint16(n.data[offEOff:offEOff+2], uint16(headerSize+8*numHandicaps))
	n.setCount(0)
	n.setNext(pagestore.InvalidPage)
	n.setPrev(pagestore.InvalidPage)
	for i := 0; i < numHandicaps; i++ {
		n.setHandicap(i, kinds[i].Identity())
	}
	n.frame.MarkDirty()
}

func (n node) numHandicaps() int { return (n.eOff() - n.hOff()) / 8 }

func (n node) next() pagestore.PageID {
	return pagestore.PageID(binary.LittleEndian.Uint32(n.data[offNext : offNext+4]))
}
func (n node) setNext(p pagestore.PageID) {
	binary.LittleEndian.PutUint32(n.data[offNext:offNext+4], uint32(p))
	n.frame.MarkDirty()
}
func (n node) prev() pagestore.PageID {
	return pagestore.PageID(binary.LittleEndian.Uint32(n.data[offPrev : offPrev+4]))
}
func (n node) setPrev(p pagestore.PageID) {
	binary.LittleEndian.PutUint32(n.data[offPrev:offPrev+4], uint32(p))
	n.frame.MarkDirty()
}

func (n node) handicap(i int) float64 {
	off := n.hOff() + i*8
	return math.Float64frombits(binary.LittleEndian.Uint64(n.data[off : off+8]))
}
func (n node) setHandicap(i int, v float64) {
	off := n.hOff() + i*8
	binary.LittleEndian.PutUint64(n.data[off:off+8], math.Float64bits(v))
	n.frame.MarkDirty()
}

func (n node) entriesOff() int { return n.eOff() }

func (n node) entry(i int) Entry {
	off := n.entriesOff() + i*entrySize
	return Entry{
		Key: math.Float64frombits(binary.LittleEndian.Uint64(n.data[off : off+8])),
		TID: binary.LittleEndian.Uint32(n.data[off+8 : off+12]),
	}
}

func (n node) setEntry(i int, e Entry) {
	off := n.entriesOff() + i*entrySize
	binary.LittleEndian.PutUint64(n.data[off:off+8], math.Float64bits(e.Key))
	binary.LittleEndian.PutUint32(n.data[off+8:off+12], e.TID)
	n.frame.MarkDirty()
}

// insertEntryAt shifts entries [i:count) right by one and writes e at i.
func (n node) insertEntryAt(i int, e Entry) {
	c := n.count()
	off := n.entriesOff()
	copy(n.data[off+(i+1)*entrySize:off+(c+1)*entrySize], n.data[off+i*entrySize:off+c*entrySize])
	n.setEntry(i, e)
	n.setCount(c + 1)
}

// removeEntryAt shifts entries left over position i.
func (n node) removeEntryAt(i int) {
	c := n.count()
	off := n.entriesOff()
	copy(n.data[off+i*entrySize:off+(c-1)*entrySize], n.data[off+(i+1)*entrySize:off+c*entrySize])
	n.setCount(c - 1)
}

// searchLeaf returns the first position whose entry is ≥ e.
func (n node) searchLeaf(e Entry) int {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.entry(mid).Less(e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// --- Internal-node accessors ---

func (n node) initInternal() {
	n.data[offType] = typeInternal
	n.data[offLayout] = layoutVersion
	binary.LittleEndian.PutUint16(n.data[offHOff:offHOff+2], uint16(headerSize))
	binary.LittleEndian.PutUint16(n.data[offEOff:offEOff+2], uint16(headerSize+4))
	n.setCount(0)
	n.frame.MarkDirty()
}

func (n node) child(i int) pagestore.PageID {
	if i == 0 {
		h := n.hOff()
		return pagestore.PageID(binary.LittleEndian.Uint32(n.data[h : h+4]))
	}
	off := n.eOff() + (i-1)*intRecSize + 12
	return pagestore.PageID(binary.LittleEndian.Uint32(n.data[off : off+4]))
}

func (n node) setChild(i int, p pagestore.PageID) {
	if i == 0 {
		h := n.hOff()
		binary.LittleEndian.PutUint32(n.data[h:h+4], uint32(p))
	} else {
		off := n.eOff() + (i-1)*intRecSize + 12
		binary.LittleEndian.PutUint32(n.data[off:off+4], uint32(p))
	}
	n.frame.MarkDirty()
}

func (n node) sep(i int) Entry {
	off := n.eOff() + i*intRecSize
	return Entry{
		Key: math.Float64frombits(binary.LittleEndian.Uint64(n.data[off : off+8])),
		TID: binary.LittleEndian.Uint32(n.data[off+8 : off+12]),
	}
}

func (n node) setSep(i int, e Entry) {
	off := n.eOff() + i*intRecSize
	binary.LittleEndian.PutUint64(n.data[off:off+8], math.Float64bits(e.Key))
	binary.LittleEndian.PutUint32(n.data[off+8:off+12], e.TID)
	n.frame.MarkDirty()
}

// insertSepAt inserts separator e with right child rc at separator slot i.
func (n node) insertSepAt(i int, e Entry, rc pagestore.PageID) {
	c := n.count()
	base := n.eOff()
	copy(n.data[base+(i+1)*intRecSize:base+(c+1)*intRecSize], n.data[base+i*intRecSize:base+c*intRecSize])
	n.setSep(i, e)
	n.setChild(i+1, rc)
	n.setCount(c + 1)
}

// removeSepAt removes separator i together with its right child pointer.
func (n node) removeSepAt(i int) {
	c := n.count()
	base := n.eOff()
	copy(n.data[base+i*intRecSize:base+(c-1)*intRecSize], n.data[base+(i+1)*intRecSize:base+c*intRecSize])
	n.setCount(c - 1)
}

// childIndex returns the child to descend into for entry e: the first
// separator strictly greater than e guards the child to its left.
func (n node) childIndex(e Entry) int {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		if e.Less(n.sep(mid)) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
