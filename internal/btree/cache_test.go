package btree

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"dualcdb/internal/pagestore"
)

func scanKeys(t *testing.T, tr *Tree) []Entry {
	t.Helper()
	out, err := tr.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDecodeCacheServesHitsOnRepeatedSweeps(t *testing.T) {
	tr, _ := newTestTree(t, 256, []SlotKind{MinSlot})
	entries := make([]Entry, 500)
	for i := range entries {
		entries[i] = Entry{Key: float64(i), TID: uint32(i + 1)}
	}
	if err := tr.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	first := scanKeys(t, tr)
	afterFirst := tr.DecodeCacheStats()
	second := scanKeys(t, tr)
	afterSecond := tr.DecodeCacheStats()
	if len(first) != len(entries) || len(second) != len(entries) {
		t.Fatalf("scan lengths %d/%d, want %d", len(first), len(second), len(entries))
	}
	if afterSecond.Hits <= afterFirst.Hits {
		t.Fatalf("second sweep produced no cache hits: %+v -> %+v", afterFirst, afterSecond)
	}
	if afterSecond.Misses != afterFirst.Misses {
		t.Fatalf("second sweep re-decoded pages: %+v -> %+v", afterFirst, afterSecond)
	}
}

// TestDirtiedPageStaleDecodeNeverServed is the cache-correctness regression
// test: once a page is mutated (MarkDirty bumps its version), a sweep must
// observe the new contents even though the old decode is still cached.
func TestDirtiedPageStaleDecodeNeverServed(t *testing.T) {
	tr, _ := newTestTree(t, 256, []SlotKind{MinSlot})
	entries := make([]Entry, 400)
	for i := range entries {
		entries[i] = Entry{Key: float64(2 * i), TID: uint32(i + 1)}
	}
	if err := tr.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	// Populate the cache with every leaf and inner node.
	_ = scanKeys(t, tr)

	// Mutate: new entries landing in the middle of existing leaves, plus a
	// handicap update routed through a cached inner path.
	for i := 0; i < 50; i++ {
		if err := tr.Insert(float64(2*i+1), uint32(10000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.MergeHandicap(100, 0, -42); err != nil {
		t.Fatal(err)
	}

	got := scanKeys(t, tr)
	if len(got) != 450 {
		t.Fatalf("scan after mutation returned %d entries, want 450 (stale decode served?)", len(got))
	}
	for i := 0; i < 50; i++ {
		ok, err := tr.Contains(float64(2*i+1), uint32(10000+i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("inserted entry (%d, %d) invisible after caching sweep", 2*i+1, 10000+i)
		}
	}
	seen := math.Inf(1)
	err := tr.VisitLeavesAsc(math.Inf(-1), func(lv LeafView) bool {
		if lv.Handicap(0) < seen {
			seen = lv.Handicap(0)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != -42 {
		t.Fatalf("handicap update invisible through cache: min slot = %v, want -42", seen)
	}
}

func TestDecodeCacheUnderRandomMutation(t *testing.T) {
	cachedPool := pagestore.NewPool(pagestore.NewMemStore(256), 256)
	cached, err := New(cachedPool, Config{HandicapKinds: []SlotKind{MinSlot}})
	if err != nil {
		t.Fatal(err)
	}
	plainPool := pagestore.NewPool(pagestore.NewMemStore(256), 256)
	plain, err := New(plainPool, Config{HandicapKinds: []SlotKind{MinSlot}, NoDecodeCache: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	live := map[Entry]bool{}
	for op := 0; op < 3000; op++ {
		e := Entry{Key: float64(rng.Intn(300)), TID: uint32(rng.Intn(8) + 1)}
		if rng.Intn(3) > 0 {
			errC := cached.Insert(e.Key, e.TID)
			errP := plain.Insert(e.Key, e.TID)
			if (errC == nil) != (errP == nil) {
				t.Fatalf("op %d: insert divergence: cached=%v plain=%v", op, errC, errP)
			}
			if errC == nil {
				live[e] = true
			}
		} else {
			okC, errC := cached.Delete(e.Key, e.TID)
			okP, errP := plain.Delete(e.Key, e.TID)
			if errC != nil || errP != nil || okC != okP {
				t.Fatalf("op %d: delete divergence: (%v,%v) vs (%v,%v)", op, okC, errC, okP, errP)
			}
			delete(live, e)
		}
		// Interleave sweeps so stale decodes would be observed immediately.
		if op%100 == 99 {
			if err := cached.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			a := scanKeys(t, cached)
			b := scanKeys(t, plain)
			if len(a) != len(b) || len(a) != len(live) {
				t.Fatalf("op %d: scan lengths %d/%d, want %d", op, len(a), len(b), len(live))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("op %d: entry %d differs: %v vs %v", op, i, a[i], b[i])
				}
			}
		}
	}
}

// TestDecodeCacheAcrossEviction drives the ABA hazard: mutate a page, let
// the pool evict it (writing it back), then re-read it. The version stamp
// must not regress, so the pre-eviction decode stays dead.
func TestDecodeCacheAcrossEviction(t *testing.T) {
	// A pool far smaller than the tree forces constant eviction.
	pool := pagestore.NewPool(pagestore.NewMemStore(256), 8)
	tr, err := New(pool, Config{HandicapKinds: []SlotKind{MinSlot}})
	if err != nil {
		t.Fatal(err)
	}
	ref := map[Entry]bool{}
	rng := rand.New(rand.NewSource(11))
	for op := 0; op < 2000; op++ {
		e := Entry{Key: float64(rng.Intn(200)), TID: uint32(rng.Intn(4) + 1)}
		if rng.Intn(3) > 0 {
			if err := tr.Insert(e.Key, e.TID); err == nil {
				ref[e] = true
			}
		} else {
			ok, err := tr.Delete(e.Key, e.TID)
			if err != nil {
				t.Fatal(err)
			}
			if ok != ref[e] {
				t.Fatalf("op %d: delete(%v) = %v, ref %v", op, e, ok, ref[e])
			}
			delete(ref, e)
		}
	}
	got := scanKeys(t, tr)
	want := make([]Entry, 0, len(ref))
	for e := range ref {
		want = append(want, e)
	}
	sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
	if len(got) != len(want) {
		t.Fatalf("scan length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDecodeCacheCapacityBound(t *testing.T) {
	pool := pagestore.NewPool(pagestore.NewMemStore(256), 512)
	tr, err := New(pool, Config{DecodeCacheNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]Entry, 2000)
	for i := range entries {
		entries[i] = Entry{Key: float64(i), TID: 1}
	}
	if err := tr.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		if got := scanKeys(t, tr); len(got) != len(entries) {
			t.Fatalf("pass %d: scan %d entries, want %d", pass, len(got), len(entries))
		}
	}
	st := tr.DecodeCacheStats()
	if st.Evictions == 0 {
		t.Fatalf("tiny cache never evicted: %+v", st)
	}
	if n := len(tr.cache.m); n > 4 {
		t.Fatalf("cache holds %d parses, cap 4", n)
	}
}

// TestDecodeCacheRetainsHotInnerNodes pins the LRU upgrade: under the
// old FIFO ring, streaming more distinct leaves than the cache holds
// evicted the root and inner nodes along with the cold leaves, forcing a
// re-decode of the whole descent path once per round trip. Recency
// ordering refreshes the inner path on every descent, so the root must
// survive an arbitrarily long stream of cold leaves.
func TestDecodeCacheRetainsHotInnerNodes(t *testing.T) {
	pool := pagestore.NewPool(pagestore.NewMemStore(256), 512)
	tr, err := New(pool, Config{DecodeCacheNodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]Entry, 2000)
	for i := range entries {
		entries[i] = Entry{Key: float64(i), TID: uint32(i + 1)}
	}
	if err := tr.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	// Point lookups across the whole key space: every descent touches the
	// root and then a mostly-cold leaf, churning far more distinct pages
	// through the 8-slot cache than it can hold.
	for i := 0; i < 2000; i += 3 {
		ok, err := tr.Contains(float64(i), uint32(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("loaded entry %d not found", i)
		}
	}
	st := tr.DecodeCacheStats()
	if st.Evictions == 0 {
		t.Fatalf("stream never evicted, retention is vacuous: %+v", st)
	}
	tr.cache.mu.Lock()
	_, rootCached := tr.cache.m[tr.root]
	tr.cache.mu.Unlock()
	if !rootCached {
		t.Fatalf("root %d evicted despite being touched by every descent: %+v", tr.root, st)
	}
}

func TestSweepReadaheadMatchesPlainSweep(t *testing.T) {
	dir := t.TempDir()
	build := func(name string, readahead int) (*Tree, *pagestore.Pool) {
		store, err := pagestore.OpenFileStore(filepath.Join(dir, name), 256)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		pool := pagestore.NewPool(store, 4096)
		tr, err := New(pool, Config{HandicapKinds: []SlotKind{MinSlot}, Readahead: readahead})
		if err != nil {
			t.Fatal(err)
		}
		entries := make([]Entry, 3000)
		for i := range entries {
			entries[i] = Entry{Key: float64(i), TID: uint32(i + 1)}
		}
		if err := tr.BulkLoad(entries); err != nil {
			t.Fatal(err)
		}
		if err := pool.EvictAll(); err != nil {
			t.Fatal(err)
		}
		pool.ResetStats()
		return tr, pool
	}

	plain, plainPool := build("plain.db", 0)
	ra, raPool := build("ra.db", 8)

	for _, from := range []float64{math.Inf(-1), 1500} {
		for _, tc := range []struct {
			tr   *Tree
			pool *pagestore.Pool
		}{{plain, plainPool}, {ra, raPool}} {
			if err := tc.pool.EvictAll(); err != nil {
				t.Fatal(err)
			}
			tc.pool.ResetStats()
		}
		collect := func(tr *Tree) (asc, desc []Entry) {
			if err := tr.VisitLeavesAsc(from, func(lv LeafView) bool {
				asc = lv.AppendEntries(asc)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if err := tr.VisitLeavesDesc(from, func(lv LeafView) bool {
				desc = lv.AppendEntries(desc)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			return
		}
		pa, pd := collect(plain)
		ra1, rd1 := collect(ra)
		if len(pa) != len(ra1) || len(pd) != len(rd1) {
			t.Fatalf("from %v: sweep lengths differ: asc %d/%d desc %d/%d", from, len(pa), len(ra1), len(pd), len(rd1))
		}
		for i := range pa {
			if pa[i] != ra1[i] {
				t.Fatalf("from %v: asc entry %d: %v vs %v", from, i, pa[i], ra1[i])
			}
		}
		for i := range pd {
			if pd[i] != rd1[i] {
				t.Fatalf("from %v: desc entry %d: %v vs %v", from, i, pd[i], rd1[i])
			}
		}
		ps, rs := plainPool.Stats(), raPool.Stats()
		if ps.PhysicalReads != rs.PhysicalReads {
			t.Fatalf("from %v: physical reads differ: plain %d, readahead %d", from, ps.PhysicalReads, rs.PhysicalReads)
		}
		if rs.ReadaheadBatches == 0 {
			t.Fatalf("from %v: readahead sweep recorded no batches: %+v", from, rs)
		}
	}
}
