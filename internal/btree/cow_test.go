package btree

import (
	"math/rand"
	"testing"

	"dualcdb/internal/pagestore"
)

// handleOf freezes the tree's current version as a read handle, the way a
// published root set does.
func handleOf(tr *Tree) *Tree {
	ovn, ovp := tr.ChainOverrides()
	return tr.Handle(tr.Meta(), ovn, ovp)
}

func entriesOf(t *testing.T, tr *Tree) []Entry {
	t.Helper()
	es, err := tr.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	return es
}

func sameEntries(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCOWInsertPreservesPublishedHandle checks the heart of MVCC: a handle
// frozen before a batch sweeps exactly the old entries while the live tree
// takes inserts that split leaves and grow the root.
func TestCOWInsertPreservesPublishedHandle(t *testing.T) {
	tr, pool := newTestTree(t, 256, nil)
	for i := 0; i < 200; i++ {
		if err := tr.Insert(float64(i*2), uint32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	before := entriesOf(t, tr)
	h := handleOf(tr)

	tr.BeginCOW()
	for i := 0; i < 200; i++ {
		if err := tr.Insert(float64(i*2+1), uint32(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.cowSanity(); err != nil {
		t.Fatal(err)
	}
	// Mid-batch: the handle still sees exactly the old entries.
	if got := entriesOf(t, h); !sameEntries(got, before) {
		t.Fatalf("handle drifted mid-batch: %d entries, want %d", len(got), len(before))
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("handle invariants mid-batch: %v", err)
	}
	superseded := tr.CommitCOW()
	if len(superseded) == 0 {
		t.Fatal("no pages superseded by 200 COW inserts")
	}

	// Post-commit, pre-reclaim: handle still intact.
	if got := entriesOf(t, h); !sameEntries(got, before) {
		t.Fatal("handle drifted after commit")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("live tree invariants: %v", err)
	}
	if got := entriesOf(t, tr); len(got) != 400 {
		t.Fatalf("live tree has %d entries, want 400", len(got))
	}

	// With no snapshot pinned the superseded pages free immediately.
	pool.DeferFrees(2, superseded)
	if c := pool.SnapshotCensus(); c.DeferredPages != 0 {
		t.Fatalf("deferred pages after watermark free: %d", c.DeferredPages)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("live tree invariants after reclaim: %v", err)
	}
}

// TestCOWDeletePreservesPublishedHandle drives merges and the chain
// overrides they create, then checks both versions.
func TestCOWDeletePreservesPublishedHandle(t *testing.T) {
	tr, pool := newTestTree(t, 256, nil)
	const n = 300
	for i := 0; i < n; i++ {
		if err := tr.Insert(float64(i), uint32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	before := entriesOf(t, tr)
	h := handleOf(tr)

	tr.BeginCOW()
	rng := rand.New(rand.NewSource(7))
	deleted := map[int]bool{}
	for len(deleted) < n*3/4 {
		i := rng.Intn(n)
		if deleted[i] {
			continue
		}
		found, err := tr.Delete(float64(i), uint32(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("entry %d not found", i)
		}
		deleted[i] = true
	}
	if err := tr.cowSanity(); err != nil {
		t.Fatal(err)
	}
	if got := entriesOf(t, h); !sameEntries(got, before) {
		t.Fatalf("handle drifted mid-batch: %d entries, want %d", len(got), len(before))
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("handle invariants mid-batch: %v", err)
	}
	superseded := tr.CommitCOW()

	if got := entriesOf(t, h); !sameEntries(got, before) {
		t.Fatal("handle drifted after commit")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("live tree invariants: %v", err)
	}
	if got := entriesOf(t, tr); len(got) != n-len(deleted) {
		t.Fatalf("live tree has %d entries, want %d", len(got), n-len(deleted))
	}

	pool.DeferFrees(2, superseded)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("live tree invariants after reclaim: %v", err)
	}
	if got := entriesOf(t, tr); len(got) != n-len(deleted) {
		t.Fatalf("post-reclaim live tree has %d entries", len(got))
	}
}

// TestAbortCOWRestores aborts a mixed batch and checks the tree reverts
// byte-for-byte in content and that the batch's pages are given back.
func TestAbortCOWRestores(t *testing.T) {
	store := pagestore.NewMemStore(256)
	pool := pagestore.NewPool(store, 256)
	tr, err := New(pool, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		if err := tr.Insert(float64(i), uint32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	before := entriesOf(t, tr)
	meta := tr.Meta()
	allocated := store.NumAllocated()

	tr.BeginCOW()
	for i := 0; i < 60; i++ {
		if err := tr.Insert(float64(i)+0.5, uint32(2000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		if _, err := tr.Delete(float64(i), uint32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.AbortCOW(); err != nil {
		t.Fatal(err)
	}
	if tr.Meta() != meta {
		t.Fatalf("meta not restored: %+v vs %+v", tr.Meta(), meta)
	}
	if got := entriesOf(t, tr); !sameEntries(got, before) {
		t.Fatal("entries not restored after abort")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := store.NumAllocated(); got != allocated {
		t.Fatalf("abort leaked pages: %d allocated, want %d", got, allocated)
	}
}

// TestCOWHandicapsShadow checks MergeHandicap and ResetHandicaps shadow
// their paths: the frozen handle keeps the old slot values.
func TestCOWHandicapsShadow(t *testing.T) {
	tr, _ := newTestTree(t, 256, []SlotKind{MinSlot, MaxSlot})
	for i := 0; i < 120; i++ {
		if err := tr.Insert(float64(i), uint32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.MergeHandicap(10, 0, -5); err != nil {
		t.Fatal(err)
	}
	if err := tr.MergeHandicap(10, 1, 99); err != nil {
		t.Fatal(err)
	}
	readSlot := func(tree *Tree, key float64, slot int) float64 {
		leaf, err := tree.findLeaf(Entry{Key: key, TID: 0})
		if err != nil {
			t.Fatal(err)
		}
		defer leaf.release()
		return leaf.handicap(slot)
	}
	h := handleOf(tr)

	tr.BeginCOW()
	if err := tr.ResetHandicaps(); err != nil {
		t.Fatal(err)
	}
	if err := tr.MergeHandicap(10, 0, -7); err != nil {
		t.Fatal(err)
	}
	tr.CommitCOW()

	if got := readSlot(h, 10, 0); got != -5 {
		t.Fatalf("handle slot 0 = %g, want -5", got)
	}
	if got := readSlot(h, 10, 1); got != 99 {
		t.Fatalf("handle slot 1 = %g, want 99", got)
	}
	if got := readSlot(tr, 10, 0); got != -7 {
		t.Fatalf("live slot 0 = %g, want -7", got)
	}
	if got := readSlot(tr, 10, 1); got != MaxSlot.Identity() {
		t.Fatalf("live slot 1 = %g, want identity", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCOWBatchesCompose runs several sequential batches with interleaved
// handles, checking every historical version stays sweepable until its
// pages are reclaimed.
func TestCOWBatchesCompose(t *testing.T) {
	tr, pool := newTestTree(t, 256, nil)
	rng := rand.New(rand.NewSource(42))
	present := map[uint32]float64{}
	var next uint32 = 1
	for i := 0; i < 100; i++ {
		k := rng.Float64() * 1000
		if err := tr.Insert(k, next); err != nil {
			t.Fatal(err)
		}
		present[next] = k
		next++
	}

	type version struct {
		h       *Tree
		entries []Entry
	}
	var versions []version
	ver := uint64(1)
	for round := 0; round < 8; round++ {
		versions = append(versions, version{h: handleOf(tr), entries: entriesOf(t, tr)})
		tr.BeginCOW()
		for i := 0; i < 30; i++ {
			k := rng.Float64() * 1000
			if err := tr.Insert(k, next); err != nil {
				t.Fatal(err)
			}
			present[next] = k
			next++
		}
		for id, k := range present {
			if rng.Float64() < 0.25 {
				if _, err := tr.Delete(k, id); err != nil {
					t.Fatal(err)
				}
				delete(present, id)
			}
		}
		superseded := tr.CommitCOW()
		ver++
		// Keep every version alive: pin version 1 for the whole test.
		if round == 0 {
			pool.PinVersion(1)
		}
		pool.DeferFrees(ver, superseded)
	}
	for i, v := range versions {
		if got := entriesOf(t, v.h); !sameEntries(got, v.entries) {
			t.Fatalf("version %d drifted: %d entries, want %d", i, len(got), len(v.entries))
		}
		if err := v.h.CheckInvariants(); err != nil {
			t.Fatalf("version %d invariants: %v", i, err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Len(), len(present); got != want {
		t.Fatalf("live Len = %d, want %d", got, want)
	}
	pool.UnpinVersion(1)
	if c := pool.SnapshotCensus(); c.Active != 0 || c.DeferredPages != 0 {
		t.Fatalf("census after release: %+v", c)
	}
}
