package btree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dualcdb/internal/pagestore"
)

func benchTree(b *testing.B, kinds []SlotKind) *Tree {
	b.Helper()
	pool := pagestore.NewPool(pagestore.NewMemStore(1024), 1<<16)
	tr, err := New(pool, Config{HandicapKinds: kinds})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkInsertRandom(b *testing.B) {
	tr := benchTree(b, nil)
	rng := rand.New(rand.NewSource(1))
	keys := make([]float64, b.N)
	for i := range keys {
		keys[i] = rng.Float64() * 1e6
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(keys[i], uint32(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	tr := benchTree(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(float64(i), uint32(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	entries := make([]Entry, 50000)
	for i := range entries {
		entries[i] = Entry{Key: rng.Float64() * 1e6, TID: uint32(i + 1)}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Less(entries[j]) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := benchTree(b, nil)
		if err := tr.BulkLoad(entries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContains(b *testing.B) {
	tr := benchTree(b, nil)
	rng := rand.New(rand.NewSource(3))
	const n = 50000
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = rng.Float64() * 1e6
	}
	sorted := make([]Entry, n)
	for i, k := range keys {
		sorted[i] = Entry{Key: k, TID: uint32(i + 1)}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	if err := tr.BulkLoad(sorted); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%n]
		if _, err := tr.Contains(k, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepAscend(b *testing.B) {
	tr := benchTree(b, nil)
	const n = 50000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: float64(i), TID: uint32(i + 1)}
	}
	if err := tr.BulkLoad(entries); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		err := tr.VisitLeavesAsc(float64(n)*0.9, func(lv LeafView) bool {
			count += lv.Len()
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchSweepWarm sweeps the last 10% of a 50000-entry tree out of a warm
// pool, with or without the decoded-node cache. The Warm/WarmNoCache pair
// is the allocs/op acceptance comparison for the read-path overhaul.
func benchSweepWarm(b *testing.B, noCache bool) {
	pool := pagestore.NewPool(pagestore.NewMemStore(1024), 1<<16)
	tr, err := New(pool, Config{NoDecodeCache: noCache})
	if err != nil {
		b.Fatal(err)
	}
	const n = 50000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: float64(i), TID: uint32(i + 1)}
	}
	if err := tr.BulkLoad(entries); err != nil {
		b.Fatal(err)
	}
	// Prime pool and cache so the loop measures the steady state.
	if _, err := tr.ScanAll(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		err := tr.VisitLeavesAsc(float64(n)*0.9, func(lv LeafView) bool {
			count += lv.Len()
			return true
		})
		if err != nil || count == 0 {
			b.Fatalf("count=%d err=%v", count, err)
		}
	}
}

func BenchmarkSweepWarm(b *testing.B)        { benchSweepWarm(b, false) }
func BenchmarkSweepWarmNoCache(b *testing.B) { benchSweepWarm(b, true) }

// benchSweepCold sweeps a file-backed tree whose pool is evicted before
// every iteration, so each sweep pays the full physical read cost. The
// readahead variant batches sibling fetches; PhysicalReads stays equal.
func benchSweepCold(b *testing.B, readahead int) {
	store, err := pagestore.OpenFileStore(b.TempDir()+"/bench.db", 1024)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	pool := pagestore.NewPool(store, 1<<16)
	tr, err := New(pool, Config{Readahead: readahead})
	if err != nil {
		b.Fatal(err)
	}
	const n = 50000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: float64(i), TID: uint32(i + 1)}
	}
	if err := tr.BulkLoad(entries); err != nil {
		b.Fatal(err)
	}
	pool.ResetStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := pool.EvictAll(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		count := 0
		err := tr.VisitLeavesAsc(float64(n)*0.9, func(lv LeafView) bool {
			count += lv.Len()
			return true
		})
		if err != nil || count == 0 {
			b.Fatalf("count=%d err=%v", count, err)
		}
	}
	b.StopTimer()
	st := pool.Stats()
	b.ReportMetric(float64(st.PhysicalReads)/float64(b.N), "physreads/op")
	b.ReportMetric(float64(st.ReadaheadBatches)/float64(b.N), "rabatches/op")
}

func BenchmarkSweepCold(b *testing.B)          { benchSweepCold(b, 0) }
func BenchmarkSweepColdReadahead(b *testing.B) { benchSweepCold(b, 8) }

func BenchmarkMergeHandicap(b *testing.B) {
	tr := benchTree(b, []SlotKind{MinSlot, MinSlot, MaxSlot, MaxSlot})
	const n = 20000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: float64(i), TID: uint32(i + 1)}
	}
	if err := tr.BulkLoad(entries); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.MergeHandicap(rng.Float64()*n, i%4, rng.Float64()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeleteRandom(b *testing.B) {
	tr := benchTree(b, nil)
	rng := rand.New(rand.NewSource(5))
	entries := make([]Entry, b.N)
	for i := range entries {
		entries[i] = Entry{Key: rng.Float64() * 1e6, TID: uint32(i + 1)}
	}
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	if err := tr.BulkLoad(sorted); err != nil {
		b.Fatal(err)
	}
	rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Delete(entries[i].Key, entries[i].TID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanAll(b *testing.B) {
	tr := benchTree(b, nil)
	const n = 50000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: float64(i), TID: uint32(i + 1)}
	}
	if err := tr.BulkLoad(entries); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := tr.ScanAll()
		if err != nil || len(got) != n {
			b.Fatalf("%d %v", len(got), err)
		}
	}
}

var sinkFloat float64

func BenchmarkEntryCodec(b *testing.B) {
	pool := pagestore.NewPool(pagestore.NewMemStore(1024), 64)
	f, err := pool.NewPage()
	if err != nil {
		b.Fatal(err)
	}
	n := wrap(f)
	n.initLeaf(0, nil)
	n.setCount(10)
	n.setEntry(5, Entry{Key: math.Pi, TID: 42})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := n.entry(5)
		sinkFloat = e.Key
	}
}
