package btree

import (
	"fmt"

	"dualcdb/internal/pagestore"
)

// Copy-on-write batches and snapshot read handles.
//
// A batch (BeginCOW … CommitCOW/AbortCOW) shadows every mutated path from
// leaf to root into fresh pages: a page reachable from a published root is
// never rewritten in place, so a reader holding that root sweeps a frozen
// tree without locks, and the view cache's (PageID, frame-version) keys
// stay valid for free. Pages the batch allocates ("owned") are invisible
// to all published versions and are mutated in place for the rest of the
// batch; the originals they replace are "superseded" and handed to the
// pool's deferred free list at commit, tagged with the new version.
//
// The one structure COW cannot shadow cheaply is the doubly linked leaf
// chain: cloning leaf P changes the page its neighbors should link to,
// but the neighbors may themselves be shared with published versions —
// cloning them would cascade across the whole chain (and their parents).
// Instead each version carries a pair of chain-override maps ovNext and
// ovPrev: an entry (P → Q) means "P's effective next (prev) leaf is Q,
// whatever P's bytes say". Entries exist only for un-owned pages whose
// effective neighbor changed this version, so the maps are empty on a
// freshly built tree and stay tiny under steady writes; sweeps consult
// them through effNext/effPrev at a nil-map lookup's cost. Owned pages
// never need entries — their bytes are private and kept current. The maps
// are immutable once published (BeginCOW copies before mutating), so read
// handles share them without synchronization.

// cowState is an open copy-on-write batch.
type cowState struct {
	// owned marks pages allocated by this batch: no published version can
	// reach them, so the batch mutates them in place.
	owned map[pagestore.PageID]bool
	// superseded collects original pages replaced by clones or structurally
	// removed while still reachable from a published root; the commit hands
	// them to the pool's deferred free list.
	superseded []pagestore.PageID
	// Rollback state for AbortCOW.
	savedMeta   Meta
	savedOvNext map[pagestore.PageID]pagestore.PageID
	savedOvPrev map[pagestore.PageID]pagestore.PageID
}

// BeginCOW opens a copy-on-write batch: until CommitCOW or AbortCOW, every
// mutation shadows shared pages into batch-owned clones instead of
// dirtying them. At most one batch may be open per tree; the caller
// serializes writers.
func (t *Tree) BeginCOW() {
	if t.cow != nil {
		panic("btree: BeginCOW with a batch already open")
	}
	t.cow = &cowState{
		owned:       make(map[pagestore.PageID]bool),
		savedMeta:   t.Meta(),
		savedOvNext: t.ovNext,
		savedOvPrev: t.ovPrev,
	}
	t.ovNext = copyOverrides(t.ovNext)
	t.ovPrev = copyOverrides(t.ovPrev)
}

// CommitCOW closes the batch keeping its mutations and returns the
// superseded pages. The caller must publish the new root set before
// handing them to Pool.DeferFrees, so no late snapshot can pin the old
// version after its pages are queued behind it.
func (t *Tree) CommitCOW() []pagestore.PageID {
	if t.cow == nil {
		panic("btree: CommitCOW without an open batch")
	}
	s := t.cow.superseded
	t.cow = nil
	return s
}

// AbortCOW discards the batch: every batch-owned page is freed and the
// root metadata and chain overrides revert to their BeginCOW values. The
// published tree was never touched, so aborting is invisible to readers.
func (t *Tree) AbortCOW() error {
	if t.cow == nil {
		panic("btree: AbortCOW without an open batch")
	}
	var err error
	for id := range t.cow.owned {
		if ferr := t.pool.FreePage(id); ferr != nil && err == nil {
			err = ferr
		}
	}
	m := t.cow.savedMeta
	t.root, t.hgt, t.size, t.pages = m.Root, m.Height, m.Size, m.Pages
	t.ovNext, t.ovPrev = t.cow.savedOvNext, t.cow.savedOvPrev
	t.pendingFree = t.pendingFree[:0]
	t.cow = nil
	return err
}

// InCOW reports whether a copy-on-write batch is open.
func (t *Tree) InCOW() bool { return t.cow != nil }

// ChainOverrides returns the tree's current chain-override maps. They are
// immutable once captured by a published root set: the next BeginCOW
// copies before mutating.
func (t *Tree) ChainOverrides() (ovNext, ovPrev map[pagestore.PageID]pagestore.PageID) {
	return t.ovNext, t.ovPrev
}

// Handle returns a read-only view of the tree frozen at root metadata m
// with the given chain-override maps — the per-version tree a snapshot
// sweeps. It shares the pool, config, view cache and traversal counters
// with t; it must not be mutated.
func (t *Tree) Handle(m Meta, ovNext, ovPrev map[pagestore.PageID]pagestore.PageID) *Tree {
	return &Tree{
		pool:    t.pool,
		cfg:     t.cfg,
		root:    m.Root,
		hgt:     m.Height,
		size:    m.Size,
		pages:   m.Pages,
		cache:   t.cache,
		stats:   t.stats,
		ovNext:  ovNext,
		ovPrev:  ovPrev,
		leafCap: t.leafCap,
		intCap:  t.intCap,
	}
}

func copyOverrides(m map[pagestore.PageID]pagestore.PageID) map[pagestore.PageID]pagestore.PageID {
	if len(m) == 0 {
		return nil
	}
	c := make(map[pagestore.PageID]pagestore.PageID, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// effNext resolves a leaf's effective forward chain link: the override for
// id when this version carries one, the raw bytes link otherwise. Owned
// and freshly written pages never have override entries, so their bytes
// are authoritative.
func (t *Tree) effNext(id, raw pagestore.PageID) pagestore.PageID {
	if v, ok := t.ovNext[id]; ok {
		return v
	}
	return raw
}

// effPrev is effNext for the backward link.
func (t *Tree) effPrev(id, raw pagestore.PageID) pagestore.PageID {
	if v, ok := t.ovPrev[id]; ok {
		return v
	}
	return raw
}

// writable returns a node of the open batch that is safe to mutate in
// place: n itself when no batch is open (legacy in-place mode) or when the
// batch already owns it, and otherwise a fresh clone with n's effective
// chain links resolved into its bytes and both chain neighbors repointed
// at it. On success the returned node replaces n (whose frame is released
// if a clone was made); on error n is released.
func (t *Tree) writable(n node) (node, error) {
	if t.cow == nil || t.cow.owned[n.id()] {
		return n, nil
	}
	old := n.id()
	f, err := t.pool.ClonePage(old)
	if err != nil {
		n.release()
		return node{}, err
	}
	c := wrap(f)
	t.cow.owned[c.id()] = true
	t.cow.superseded = append(t.cow.superseded, old)
	if n.isLeaf() {
		prv := t.effPrev(old, n.prev())
		nxt := t.effNext(old, n.next())
		c.setPrev(prv)
		c.setNext(nxt)
		if prv != pagestore.InvalidPage {
			if err := t.setChainNext(prv, c.id()); err != nil {
				n.release()
				c.release()
				return node{}, err
			}
		}
		if nxt != pagestore.InvalidPage {
			if err := t.setChainPrev(nxt, c.id()); err != nil {
				n.release()
				c.release()
				return node{}, err
			}
		}
		delete(t.ovNext, old)
		delete(t.ovPrev, old)
	}
	n.release()
	return c, nil
}

// setChainNext points the forward chain link of leaf id at `to`. Outside a
// batch, and for batch-owned pages, the edit lands in the page bytes; for
// pages a published version may still reach it lands in the override map,
// leaving the shared bytes untouched.
func (t *Tree) setChainNext(id, to pagestore.PageID) error {
	if t.cow != nil && !t.cow.owned[id] {
		if t.ovNext == nil {
			t.ovNext = make(map[pagestore.PageID]pagestore.PageID)
		}
		t.ovNext[id] = to
		return nil
	}
	n, err := t.get(id)
	if err != nil {
		return err
	}
	n.setNext(to)
	n.release()
	return nil
}

// setChainPrev is setChainNext for the backward link.
func (t *Tree) setChainPrev(id, to pagestore.PageID) error {
	if t.cow != nil && !t.cow.owned[id] {
		if t.ovPrev == nil {
			t.ovPrev = make(map[pagestore.PageID]pagestore.PageID)
		}
		t.ovPrev[id] = to
		return nil
	}
	n, err := t.get(id)
	if err != nil {
		return err
	}
	n.setPrev(to)
	n.release()
	return nil
}

// freeOrSupersede disposes of a page the tree no longer references:
// batch-owned pages (and every page outside a batch) free immediately,
// pages a published version may still reach are retired with the commit.
func (t *Tree) freeOrSupersede(id pagestore.PageID) error {
	if t.cow != nil {
		if !t.cow.owned[id] {
			t.cow.superseded = append(t.cow.superseded, id)
			return nil
		}
		delete(t.cow.owned, id)
	}
	return t.pool.FreePage(id)
}

// findLeafWritable descends to the leaf owning e with every node on the
// path made writable, patching each parent's child link as the descent
// goes (the parent is already owned by the time its child is cloned).
func (t *Tree) findLeafWritable(e Entry) (node, error) {
	t.stats.descents.Add(1)
	n, err := t.get(t.root)
	if err != nil {
		return node{}, err
	}
	if n, err = t.writable(n); err != nil {
		return node{}, err
	}
	if n.id() != t.root {
		t.root = n.id()
	}
	for !n.isLeaf() {
		ci := n.childIndex(e)
		child, err := t.get(n.child(ci))
		if err != nil {
			n.release()
			return node{}, err
		}
		if child, err = t.writable(child); err != nil {
			n.release()
			return node{}, err
		}
		if n.child(ci) != child.id() {
			n.setChild(ci, child.id())
		}
		n.release()
		n = child
	}
	return n, nil
}

// resetHandicapsCOW restores identity handicaps under an open batch. The
// in-place chain walk of ResetHandicaps would both dirty shared leaves and
// orphan parent→child links when a mid-chain leaf is cloned, so under COW
// the reset walks the tree top-down, cloning every node and repointing the
// child links as it unwinds.
func (t *Tree) resetHandicapsCOW() error {
	var walk func(id pagestore.PageID, height int) (pagestore.PageID, error)
	walk = func(id pagestore.PageID, height int) (pagestore.PageID, error) {
		n, err := t.get(id)
		if err != nil {
			return id, err
		}
		if n, err = t.writable(n); err != nil {
			return id, err
		}
		self := n.id()
		defer n.release()
		if height == 1 {
			for s, k := range t.cfg.HandicapKinds {
				n.setHandicap(s, k.Identity())
			}
			return self, nil
		}
		for i := 0; i <= n.count(); i++ {
			nc, err := walk(n.child(i), height-1)
			if err != nil {
				return self, err
			}
			if nc != n.child(i) {
				n.setChild(i, nc)
			}
		}
		return self, nil
	}
	nr, err := walk(t.root, t.hgt)
	if nr != t.root && nr != pagestore.InvalidPage {
		t.root = nr
	}
	return err
}

// FlattenChainOverrides writes every chain-override entry into its page's
// bytes and clears the maps, so the raw leaf chain becomes authoritative
// again — the precondition for persisting the tree (Meta carries no
// override state). Writing those bytes would corrupt older versions that
// still mask them, so the caller must guarantee no snapshot is active;
// the current version is unaffected (the overrides it still carries then
// agree with the bytes). Must not be called inside a batch.
func (t *Tree) FlattenChainOverrides() error {
	if t.cow != nil {
		return fmt.Errorf("btree: FlattenChainOverrides inside a copy-on-write batch")
	}
	for id, to := range t.ovNext {
		n, err := t.get(id)
		if err != nil {
			return err
		}
		n.setNext(to)
		n.release()
	}
	for id, to := range t.ovPrev {
		n, err := t.get(id)
		if err != nil {
			return err
		}
		n.setPrev(to)
		n.release()
	}
	t.ovNext, t.ovPrev = nil, nil
	return nil
}

// cowSanity is a debug helper for tests: it verifies that no batch-owned
// page appears in the superseded list.
func (t *Tree) cowSanity() error {
	if t.cow == nil {
		return nil
	}
	for _, id := range t.cow.superseded {
		if t.cow.owned[id] {
			return fmt.Errorf("btree: page %d both owned and superseded", id)
		}
	}
	return nil
}
