package btree

import (
	"math"
	"testing"
	"testing/quick"
)

// opSpec is a quick-generated mutation: Key is folded into a small key
// space so inserts and deletes collide often, exercising splits, merges
// and duplicate handling.
type opSpec struct {
	Key    uint16
	TID    uint16
	Delete bool
}

// TestQuickModelEquivalence drives the tree with quick-generated operation
// sequences against a map model, checking contents and invariants.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(ops []opSpec) bool {
		tr, _ := newTestTree(t, 256, nil)
		model := make(map[Entry]bool)
		for _, op := range ops {
			key := float64(op.Key % 512)
			tid := uint32(op.TID%64) + 1
			e := Entry{Key: key, TID: tid}
			if op.Delete {
				found, err := tr.Delete(key, tid)
				if err != nil {
					t.Logf("delete error: %v", err)
					return false
				}
				if found != model[e] {
					t.Logf("delete presence mismatch for %v: tree %v, model %v", e, found, model[e])
					return false
				}
				delete(model, e)
			} else {
				err := tr.Insert(key, tid)
				if model[e] {
					if err == nil {
						t.Logf("duplicate insert of %v accepted", e)
						return false
					}
				} else {
					if err != nil {
						t.Logf("insert error: %v", err)
						return false
					}
					model[e] = true
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		got, err := tr.ScanAll()
		if err != nil {
			t.Logf("scan: %v", err)
			return false
		}
		if len(got) != len(model) {
			t.Logf("size: tree %d, model %d", len(got), len(model))
			return false
		}
		for _, e := range got {
			if !model[e] {
				t.Logf("extra entry %v", e)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSweepOrder: for any quick-generated key set, ascending and
// descending sweeps enumerate exactly the stored multiset in opposite
// orders.
func TestQuickSweepOrder(t *testing.T) {
	f := func(keys []uint16) bool {
		tr, _ := newTestTree(t, 256, nil)
		seen := make(map[Entry]bool)
		for i, k := range keys {
			e := Entry{Key: float64(k % 1024), TID: uint32(i + 1)}
			if err := tr.Insert(e.Key, e.TID); err != nil {
				return false
			}
			seen[e] = true
		}
		var asc []Entry
		if err := tr.VisitLeavesAsc(math.Inf(-1), func(lv LeafView) bool {
			asc = lv.AppendEntries(asc)
			return true
		}); err != nil {
			return false
		}
		var desc []Entry
		if err := tr.VisitLeavesDesc(math.Inf(1), func(lv LeafView) bool {
			for i := lv.Len() - 1; i >= 0; i-- {
				desc = append(desc, lv.Entry(i))
			}
			return true
		}); err != nil {
			return false
		}
		if len(asc) != len(seen) || len(desc) != len(seen) {
			return false
		}
		for i := 1; i < len(asc); i++ {
			if asc[i].Less(asc[i-1]) {
				return false
			}
		}
		for i := range desc {
			if desc[i] != asc[len(asc)-1-i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
