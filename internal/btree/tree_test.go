package btree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dualcdb/internal/pagestore"
)

func newTestTree(t *testing.T, pageSize int, kinds []SlotKind) (*Tree, *pagestore.Pool) {
	t.Helper()
	pool := pagestore.NewPool(pagestore.NewMemStore(pageSize), 256)
	tr, err := New(pool, Config{HandicapKinds: kinds})
	if err != nil {
		t.Fatal(err)
	}
	return tr, pool
}

func TestInsertAndScan(t *testing.T) {
	tr, _ := newTestTree(t, 256, nil)
	keys := []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	for i, k := range keys {
		if err := tr.Insert(k, uint32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d", tr.Len())
	}
	got, err := tr.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Less(got[i-1]) {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDuplicateKeyDifferentTID(t *testing.T) {
	tr, _ := newTestTree(t, 256, nil)
	for tid := uint32(1); tid <= 50; tid++ {
		if err := tr.Insert(3.14, tid); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Insert(3.14, 7); err == nil {
		t.Fatal("exact duplicate must be rejected")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestContains(t *testing.T) {
	tr, _ := newTestTree(t, 256, nil)
	_ = tr.Insert(1, 1)
	_ = tr.Insert(2, 2)
	if ok, _ := tr.Contains(1, 1); !ok {
		t.Error("(1,1) must be present")
	}
	if ok, _ := tr.Contains(1, 2); ok {
		t.Error("(1,2) must be absent")
	}
	if ok, _ := tr.Contains(3, 1); ok {
		t.Error("(3,1) must be absent")
	}
}

func TestInsertManyRandomWithInvariants(t *testing.T) {
	tr, _ := newTestTree(t, 256, nil)
	rng := rand.New(rand.NewSource(1))
	n := 3000
	ref := make(map[Entry]bool)
	for i := 0; i < n; i++ {
		e := Entry{Key: math.Floor(rng.Float64()*500) / 10, TID: uint32(i + 1)}
		if err := tr.Insert(e.Key, e.TID); err != nil {
			t.Fatal(err)
		}
		ref[e] = true
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, err := tr.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("scan %d entries, want %d", len(got), len(ref))
	}
	for _, e := range got {
		if !ref[e] {
			t.Fatalf("unexpected entry %v", e)
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("tree of %d entries should have split (height=%d)", n, tr.Height())
	}
}

func TestDeleteAllRandomOrder(t *testing.T) {
	tr, pool := newTestTree(t, 256, nil)
	rng := rand.New(rand.NewSource(2))
	var entries []Entry
	for i := 0; i < 2000; i++ {
		e := Entry{Key: rng.Float64() * 100, TID: uint32(i + 1)}
		entries = append(entries, e)
		if err := tr.Insert(e.Key, e.TID); err != nil {
			t.Fatal(err)
		}
	}
	rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	for i, e := range entries {
		found, err := tr.Delete(e.Key, e.TID)
		if err != nil {
			t.Fatalf("delete %v: %v", e, err)
		}
		if !found {
			t.Fatalf("entry %v missing at delete", e)
		}
		if i%200 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All pages except the root leaf must have been freed.
	if got := pool.Store().NumAllocated(); got != 1 {
		t.Fatalf("store still holds %d pages", got)
	}
	if tr.Pages() != 1 {
		t.Fatalf("tree reports %d pages", tr.Pages())
	}
}

func TestDeleteMissing(t *testing.T) {
	tr, _ := newTestTree(t, 256, nil)
	_ = tr.Insert(1, 1)
	found, err := tr.Delete(2, 1)
	if err != nil || found {
		t.Fatalf("Delete missing = %v, %v", found, err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestMixedInsertDeleteAgainstReference(t *testing.T) {
	tr, _ := newTestTree(t, 256, nil)
	rng := rand.New(rand.NewSource(3))
	ref := make(map[Entry]bool)
	var live []Entry
	for step := 0; step < 6000; step++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			e := Entry{Key: math.Floor(rng.Float64()*300) / 7, TID: uint32(step + 1)}
			if err := tr.Insert(e.Key, e.TID); err != nil {
				t.Fatal(err)
			}
			ref[e] = true
			live = append(live, e)
		} else {
			i := rng.Intn(len(live))
			e := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			found, err := tr.Delete(e.Key, e.TID)
			if err != nil || !found {
				t.Fatalf("delete %v: %v %v", e, found, err)
			}
			delete(ref, e)
		}
		if step%500 == 499 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	got, err := tr.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("scan %d, ref %d", len(got), len(ref))
	}
	for _, e := range got {
		if !ref[e] {
			t.Fatalf("entry %v not in reference", e)
		}
	}
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	entries := make([]Entry, 5000)
	for i := range entries {
		entries[i] = Entry{Key: rng.Float64() * 1000, TID: uint32(i + 1)}
	}
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })

	bulk, _ := newTestTree(t, 256, nil)
	if err := bulk.BulkLoad(sorted); err != nil {
		t.Fatal(err)
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, err := bulk.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sorted) {
		t.Fatalf("bulk scan %d, want %d", len(got), len(sorted))
	}
	for i := range got {
		if got[i] != sorted[i] {
			t.Fatalf("bulk[%d] = %v, want %v", i, got[i], sorted[i])
		}
	}
	// Bulk-loaded trees must also accept further inserts and deletes.
	if err := bulk.Insert(-1, 9999); err != nil {
		t.Fatal(err)
	}
	if found, err := bulk.Delete(sorted[100].Key, sorted[100].TID); err != nil || !found {
		t.Fatalf("delete after bulk: %v %v", found, err)
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadRejectsNonEmpty(t *testing.T) {
	tr, _ := newTestTree(t, 256, nil)
	_ = tr.Insert(1, 1)
	if err := tr.BulkLoad([]Entry{{Key: 2, TID: 2}}); err != ErrNotEmpty {
		t.Fatalf("want ErrNotEmpty, got %v", err)
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr, _ := newTestTree(t, 256, nil)
	if err := tr.BulkLoad(nil); err != nil {
		t.Fatal(err)
	}
	got, _ := tr.ScanAll()
	if len(got) != 0 {
		t.Fatalf("scan = %v", got)
	}
}

func TestInfinityKeys(t *testing.T) {
	// Unbounded tuples store ±Inf surface values (paper footnote 5 — we use
	// IEEE infinities directly).
	tr, _ := newTestTree(t, 256, nil)
	_ = tr.Insert(math.Inf(1), 1)
	_ = tr.Insert(math.Inf(-1), 2)
	_ = tr.Insert(0, 3)
	got, err := tr.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if got[0].TID != 2 || got[1].TID != 3 || got[2].TID != 1 {
		t.Fatalf("infinity ordering: %v", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPagesAccounting(t *testing.T) {
	tr, pool := newTestTree(t, 256, nil)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		_ = tr.Insert(rng.Float64(), uint32(i+1))
	}
	if tr.Pages() != pool.Store().NumAllocated() {
		t.Fatalf("tree pages %d != store pages %d", tr.Pages(), pool.Store().NumAllocated())
	}
}
