package btree

import (
	"errors"
	"fmt"
	"sync/atomic"

	"dualcdb/internal/pagestore"
)

// Config parameterizes a tree.
type Config struct {
	// HandicapKinds declares the per-leaf auxiliary slots: one entry per
	// slot, fixing how values merge (MinSlot or MaxSlot). May be empty for
	// a plain B⁺-tree. At most 8 slots.
	HandicapKinds []SlotKind
	// FillFactor is the target leaf occupancy for bulk loading, in (0, 1];
	// the default is 0.9.
	FillFactor float64
	// NoDecodeCache disables the view-meta cache, so every visit re-parses
	// the page header (useful as a benchmark baseline; the name predates
	// the zero-copy layout, under which no visit materializes slices
	// either way).
	NoDecodeCache bool
	// DecodeCacheNodes bounds the number of parsed headers kept per tree;
	// ≤ 0 selects the default 4096.
	DecodeCacheNodes int
	// Readahead is the number of sibling leaves fetched per vectored chain
	// read during leaf sweeps (including the demanded one); values ≤ 1
	// disable readahead (the default). Enabling it changes when pages are
	// read, not how many distinct pages a full sweep touches, but
	// early-terminated sweeps may prefetch pages they never visit — keep
	// it off when reproducing the paper's exact per-query I/O counts.
	Readahead int
}

// Tree is a disk-based B⁺-tree over (float64, uint32) composite keys.
type Tree struct {
	pool  *pagestore.Pool
	cfg   Config
	root  pagestore.PageID
	hgt   int // 1 = root is a leaf
	size  int
	pages int // pages owned by this tree

	// pendingFree holds pages emptied by merges; they are still pinned when
	// the merge runs, so Delete frees them after the recursion unwinds.
	pendingFree []pagestore.PageID

	// cache holds parsed page headers (view metadata), validated against
	// frame version stamps; nil when Config.NoDecodeCache is set.
	cache *viewCache

	// stats is shared between a tree and every read handle derived from it
	// (the atomics make treeStats non-copyable, so it lives behind one
	// pointer).
	stats *treeStats

	// ovNext/ovPrev are this version's leaf-chain overrides (see cow.go):
	// effective next/prev links for un-owned pages whose neighbor was
	// cloned. Nil or empty on a tree that has never been shadowed.
	ovNext, ovPrev map[pagestore.PageID]pagestore.PageID

	// cow, when non-nil, is the open copy-on-write batch; nil selects the
	// legacy in-place mutation mode.
	cow *cowState

	leafCap int
	intCap  int
}

// treeStats holds the traversal counters (atomics: sweeps run
// concurrently). descents counts root-to-leaf searches, leavesVisited the
// leaves snapshotted by chain sweeps.
type treeStats struct {
	descents      atomic.Uint64
	leavesVisited atomic.Uint64
}

// ErrDuplicate is returned when inserting an entry that already exists.
var ErrDuplicate = errors.New("btree: duplicate entry")

// ErrNotEmpty is returned when bulk loading a non-empty tree.
var ErrNotEmpty = errors.New("btree: tree not empty")

// New creates an empty tree whose pages are allocated from pool.
func New(pool *pagestore.Pool, cfg Config) (*Tree, error) {
	if len(cfg.HandicapKinds) > 8 {
		return nil, fmt.Errorf("btree: too many handicap slots (%d)", len(cfg.HandicapKinds))
	}
	if cfg.FillFactor <= 0 || cfg.FillFactor > 1 {
		cfg.FillFactor = 0.9
	}
	t := &Tree{pool: pool, cfg: cfg, stats: &treeStats{}}
	if !cfg.NoDecodeCache {
		t.cache = newViewCache(cfg.DecodeCacheNodes, pool)
	}
	ps := pool.PageSize()
	t.leafCap = (ps - headerSize - 8*len(cfg.HandicapKinds)) / entrySize
	t.intCap = (ps - headerSize - 4) / intRecSize
	if t.leafCap < 3 || t.intCap < 3 {
		return nil, fmt.Errorf("btree: page size %d too small", ps)
	}
	f, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	n := wrap(f)
	n.initLeaf(len(cfg.HandicapKinds), cfg.HandicapKinds)
	t.root = n.id()
	t.hgt = 1
	t.pages = 1
	n.release()
	return t, nil
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 = a single leaf).
func (t *Tree) Height() int { return t.hgt }

// Pages returns the number of pages the tree occupies.
func (t *Tree) Pages() int { return t.pages }

// LeafCapacity returns the per-leaf entry capacity (for tests and sizing).
func (t *Tree) LeafCapacity() int { return t.leafCap }

// Meta is the tree's persistent root metadata: everything needed to
// reattach to its pages after a restart.
type Meta struct {
	Root   pagestore.PageID
	Height int
	Size   int
	Pages  int
}

// Meta snapshots the tree's root metadata.
func (t *Tree) Meta() Meta {
	return Meta{Root: t.root, Height: t.hgt, Size: t.size, Pages: t.pages}
}

// Restore reattaches a tree to existing pages described by m. The Config
// must match the one the tree was created with (same handicap slots and
// page size); this is checked against the root page where possible.
func Restore(pool *pagestore.Pool, cfg Config, m Meta) (*Tree, error) {
	if len(cfg.HandicapKinds) > 8 {
		return nil, fmt.Errorf("btree: too many handicap slots (%d)", len(cfg.HandicapKinds))
	}
	if cfg.FillFactor <= 0 || cfg.FillFactor > 1 {
		cfg.FillFactor = 0.9
	}
	if m.Root == pagestore.InvalidPage || m.Height < 1 {
		return nil, fmt.Errorf("btree: invalid metadata %+v", m)
	}
	t := &Tree{pool: pool, cfg: cfg, root: m.Root, hgt: m.Height, size: m.Size, pages: m.Pages, stats: &treeStats{}}
	if !cfg.NoDecodeCache {
		t.cache = newViewCache(cfg.DecodeCacheNodes, pool)
	}
	ps := pool.PageSize()
	t.leafCap = (ps - headerSize - 8*len(cfg.HandicapKinds)) / entrySize
	t.intCap = (ps - headerSize - 4) / intRecSize
	if t.leafCap < 3 || t.intCap < 3 {
		return nil, fmt.Errorf("btree: page size %d too small", ps)
	}
	// Sanity: the root page must exist and carry a plausible node type.
	f, err := pool.Get(m.Root)
	if err != nil {
		return nil, fmt.Errorf("btree: restore root: %w", err)
	}
	n := wrap(f)
	defer n.release()
	if typ := n.data[0]; typ != typeLeaf && typ != typeInternal {
		return nil, fmt.Errorf("btree: page %d is not a node (type %d)", m.Root, typ)
	}
	if n.isLeaf() != (m.Height == 1) {
		return nil, fmt.Errorf("btree: root type inconsistent with height %d", m.Height)
	}
	if n.isLeaf() && n.numHandicaps() != len(cfg.HandicapKinds) {
		return nil, fmt.Errorf("btree: handicap slot mismatch: stored %d, config %d",
			n.numHandicaps(), len(cfg.HandicapKinds))
	}
	return t, nil
}

// NumHandicaps returns the number of per-leaf handicap slots.
func (t *Tree) NumHandicaps() int { return len(t.cfg.HandicapKinds) }

func (t *Tree) get(id pagestore.PageID) (node, error) {
	return t.getTracked(id, nil)
}

// getTracked pins a page, attributing a cache miss to rc when non-nil (the
// per-query I/O accounting of concurrent sweeps).
func (t *Tree) getTracked(id pagestore.PageID, rc *pagestore.ReadCounter) (node, error) {
	f, err := t.pool.GetTracked(id, rc)
	if err != nil {
		return node{}, err
	}
	return wrap(f), nil
}

func (t *Tree) newLeaf() (node, error) {
	f, err := t.pool.NewPage()
	if err != nil {
		return node{}, err
	}
	n := wrap(f)
	n.initLeaf(len(t.cfg.HandicapKinds), t.cfg.HandicapKinds)
	if t.cow != nil {
		t.cow.owned[n.id()] = true
	}
	t.pages++
	return n, nil
}

func (t *Tree) newInternal() (node, error) {
	f, err := t.pool.NewPage()
	if err != nil {
		return node{}, err
	}
	n := wrap(f)
	n.initInternal()
	if t.cow != nil {
		t.cow.owned[n.id()] = true
	}
	t.pages++
	return n, nil
}

// findLeaf descends to the leaf that owns entry e, returning it pinned.
func (t *Tree) findLeaf(e Entry) (node, error) {
	return t.findLeafTracked(e, nil)
}

// findLeafTracked is findLeaf with the descent's page reads charged to rc.
// Internal nodes are routed through the view cache when enabled, so
// repeated descents skip the header parse; the separator search itself
// always reads the pinned page bytes in place.
func (t *Tree) findLeafTracked(e Entry, rc *pagestore.ReadCounter) (node, error) {
	t.stats.descents.Add(1)
	n, err := t.getTracked(t.root, rc)
	if err != nil {
		return node{}, err
	}
	for !n.isLeaf() {
		var child pagestore.PageID
		if t.cache != nil {
			v := n.view(t.cache.lookup(n))
			child = v.child(v.childIndex(e))
		} else {
			child = n.child(n.childIndex(e))
		}
		n.release()
		if n, err = t.getTracked(child, rc); err != nil {
			return node{}, err
		}
	}
	return n, nil
}

// DecodeCacheStats returns the view-meta cache counters (zero when the
// cache is disabled). The name predates the zero-copy layout.
func (t *Tree) DecodeCacheStats() DecodeStats {
	if t.cache == nil {
		return DecodeStats{}
	}
	return t.cache.stats()
}

// SweepStats counts tree-traversal activity: root-to-leaf descents
// (searches, sweep starts, handicap routing) and leaves snapshotted by
// chain sweeps. Monotone over the tree's lifetime.
type SweepStats struct {
	Descents      uint64 `json:"descents"`
	LeavesVisited uint64 `json:"leaves_visited"`
}

// Add accumulates other into s (for summing stats across trees).
func (s *SweepStats) Add(o SweepStats) {
	s.Descents += o.Descents
	s.LeavesVisited += o.LeavesVisited
}

// SweepStats returns the tree's traversal counters.
func (t *Tree) SweepStats() SweepStats {
	return SweepStats{
		Descents:      t.stats.descents.Load(),
		LeavesVisited: t.stats.leavesVisited.Load(),
	}
}

// Contains reports whether the exact entry (key, tid) is present.
func (t *Tree) Contains(key float64, tid uint32) (bool, error) {
	e := Entry{Key: key, TID: tid}
	leaf, err := t.findLeaf(e)
	if err != nil {
		return false, err
	}
	defer leaf.release()
	i := leaf.searchLeaf(e)
	return i < leaf.count() && leaf.entry(i) == e, nil
}

// Insert adds (key, tid). ErrDuplicate if the exact pair is present.
// Under an open copy-on-write batch the mutated path is shadowed into
// batch-owned pages and the tree's root moves to the shadow copy; the
// previously published root is untouched.
func (t *Tree) Insert(key float64, tid uint32) error {
	e := Entry{Key: key, TID: tid}
	self, sep, right, err := t.insertInto(t.root, t.hgt, e)
	if self != pagestore.InvalidPage && self != t.root {
		// Adopt the shadowed root even on error, so a partially cloned
		// path stays linked until the batch commits or aborts.
		t.root = self
	}
	if err != nil {
		return err
	}
	if right != pagestore.InvalidPage {
		// Root split: grow the tree.
		nr, err := t.newInternal()
		if err != nil {
			return err
		}
		nr.setChild(0, t.root)
		nr.insertSepAt(0, sep, right)
		t.root = nr.id()
		t.hgt++
		nr.release()
	}
	t.size++
	return nil
}

// insertInto inserts e under the subtree rooted at id (at the given
// height). It returns the subtree's possibly changed root page — under a
// copy-on-write batch the whole descent path is shadowed, so ids move —
// and reports a split as (separator, newRightPage).
func (t *Tree) insertInto(id pagestore.PageID, height int, e Entry) (self pagestore.PageID, sep Entry, right pagestore.PageID, err error) {
	n, err := t.get(id)
	if err != nil {
		return id, Entry{}, pagestore.InvalidPage, err
	}
	if n, err = t.writable(n); err != nil {
		return id, Entry{}, pagestore.InvalidPage, err
	}
	self = n.id()
	defer n.release()

	if height == 1 {
		i := n.searchLeaf(e)
		if i < n.count() && n.entry(i) == e {
			return self, Entry{}, pagestore.InvalidPage, fmt.Errorf("%w: (%g, %d)", ErrDuplicate, e.Key, e.TID)
		}
		if n.count() < t.leafCap {
			n.insertEntryAt(i, e)
			return self, Entry{}, pagestore.InvalidPage, nil
		}
		// Split the leaf: right half moves to a new page. Handicap slots
		// are copied to both halves — conservative and always sound
		// (see DESIGN.md §4.4 "Handicap maintenance").
		r, err := t.newLeaf()
		if err != nil {
			return self, Entry{}, pagestore.InvalidPage, err
		}
		defer r.release()
		mid := n.count() / 2
		for j := mid; j < n.count(); j++ {
			r.setEntry(j-mid, n.entry(j))
		}
		r.setCount(n.count() - mid)
		n.setCount(mid)
		for s := 0; s < n.numHandicaps(); s++ {
			r.setHandicap(s, n.handicap(s))
		}
		// Chain: n <-> r <-> oldNext. n is writable, so its bytes carry
		// the batch's effective links already; oldNext may be shared with
		// a published version, so its back link goes through the
		// override-aware setter.
		oldNext := n.next()
		r.setNext(oldNext)
		r.setPrev(n.id())
		n.setNext(r.id())
		if oldNext != pagestore.InvalidPage {
			if err := t.setChainPrev(oldNext, r.id()); err != nil {
				return self, Entry{}, pagestore.InvalidPage, err
			}
		}
		sp := r.entry(0)
		if e.Less(sp) {
			n.insertEntryAt(n.searchLeaf(e), e)
		} else {
			r.insertEntryAt(r.searchLeaf(e), e)
		}
		return self, sp, r.id(), nil
	}

	ci := n.childIndex(e)
	oldChild := n.child(ci)
	newChild, sp, grand, err := t.insertInto(oldChild, height-1, e)
	if newChild != pagestore.InvalidPage && newChild != oldChild {
		n.setChild(ci, newChild)
	}
	if err != nil || grand == pagestore.InvalidPage {
		return self, Entry{}, pagestore.InvalidPage, err
	}
	if n.count() < t.intCap {
		n.insertSepAt(ci, sp, grand)
		return self, Entry{}, pagestore.InvalidPage, nil
	}
	// Split the internal node around its median separator.
	r, err := t.newInternal()
	if err != nil {
		return self, Entry{}, pagestore.InvalidPage, err
	}
	defer r.release()
	c := n.count()
	mid := c / 2
	up := n.sep(mid)
	r.setChild(0, n.child(mid+1))
	for j := mid + 1; j < c; j++ {
		r.insertSepAt(j-mid-1, n.sep(j), n.child(j+1))
	}
	n.setCount(mid)
	// Route the pending separator into the correct half.
	if sp.Less(up) {
		n.insertSepAt(n.childIndex(sp), sp, grand)
	} else {
		r.insertSepAt(r.childIndex(sp), sp, grand)
	}
	return self, up, r.id(), nil
}

// Delete removes (key, tid), reporting whether it was present. Under an
// open copy-on-write batch the mutated path is shadowed (see Insert).
func (t *Tree) Delete(key float64, tid uint32) (bool, error) {
	e := Entry{Key: key, TID: tid}
	self, found, _, err := t.deleteFrom(t.root, t.hgt, e)
	if self != pagestore.InvalidPage && self != t.root {
		t.root = self
	}
	// Free pages emptied by merges now that every frame is released. Under
	// a batch only batch-owned pages land here (shared ones are superseded
	// and retired with the commit instead).
	for _, id := range t.pendingFree {
		if t.cow != nil {
			delete(t.cow.owned, id)
		}
		if ferr := t.pool.FreePage(id); ferr != nil && err == nil {
			err = ferr
		}
		t.pages--
	}
	t.pendingFree = t.pendingFree[:0]
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	t.size--
	// Collapse the root if it became a pass-through internal node.
	for t.hgt > 1 {
		r, err := t.get(t.root)
		if err != nil {
			return true, err
		}
		if r.isLeaf() || r.count() > 0 {
			r.release()
			break
		}
		child := r.child(0)
		old := r.id()
		r.release()
		if err := t.freeOrSupersede(old); err != nil {
			return true, err
		}
		t.pages--
		t.root = child
		t.hgt--
	}
	return true, nil
}

// Minimum occupancy. A split of a full leaf (leafCap entries plus the
// pending one) leaves at least ⌊leafCap/2⌋ entries on each side; a split
// of a full internal node (intCap separators, one of which moves up)
// leaves at least ⌊(intCap−1)/2⌋ separators on each side.
func (t *Tree) minLeaf() int { return t.leafCap / 2 }
func (t *Tree) minInt() int  { return (t.intCap - 1) / 2 }

// deleteFrom removes e under the subtree at id, returning the subtree's
// possibly changed root page (ids move when a batch shadows the path);
// underflow tells the parent the node fell below minimum occupancy. When
// the entry is absent nothing is cloned.
func (t *Tree) deleteFrom(id pagestore.PageID, height int, e Entry) (self pagestore.PageID, found, underflow bool, err error) {
	n, err := t.get(id)
	if err != nil {
		return id, false, false, err
	}

	if height == 1 {
		i := n.searchLeaf(e)
		if i >= n.count() || n.entry(i) != e {
			n.release()
			return id, false, false, nil
		}
		if n, err = t.writable(n); err != nil {
			return id, false, false, err
		}
		defer n.release()
		n.removeEntryAt(i)
		return n.id(), true, n.count() < t.minLeaf(), nil
	}

	ci := n.childIndex(e)
	oldChild := n.child(ci)
	newChild, found, under, err := t.deleteFrom(oldChild, height-1, e)
	if newChild == oldChild && (err != nil || !found) {
		// Nothing changed below: leave this node untouched too.
		n.release()
		return id, found, false, err
	}
	var werr error
	if n, werr = t.writable(n); werr != nil {
		return id, found, false, werr
	}
	self = n.id()
	defer n.release()
	if newChild != oldChild {
		n.setChild(ci, newChild)
	}
	if err != nil || !found || !under {
		return self, found, false, err
	}
	if err := t.rebalanceChild(n, ci, height-1); err != nil {
		return self, true, false, err
	}
	return self, true, n.count() < t.minInt(), nil
}

// rebalanceChild restores minimum occupancy of n's ci-th child by borrowing
// from a sibling or merging with one. n is writable; the underflowing child
// is too (deleteFrom shadowed it when it removed the entry). Siblings are
// made writable before they are mutated, with n's child link patched to
// any clone.
func (t *Tree) rebalanceChild(n node, ci, childHeight int) error {
	child, err := t.get(n.child(ci))
	if err != nil {
		return err
	}
	defer child.release()

	// Try borrowing from the left sibling, then the right.
	if ci > 0 {
		left, err := t.get(n.child(ci - 1))
		if err != nil {
			return err
		}
		canBorrow := (childHeight == 1 && left.count() > t.minLeaf()) ||
			(childHeight > 1 && left.count() > t.minInt())
		if canBorrow {
			if left, err = t.writable(left); err != nil {
				return err
			}
			if n.child(ci-1) != left.id() {
				n.setChild(ci-1, left.id())
			}
			if childHeight == 1 {
				e := left.entry(left.count() - 1)
				left.setCount(left.count() - 1)
				child.insertEntryAt(0, e)
				n.setSep(ci-1, e)
			} else {
				// Rotate through the parent separator: the left sibling's
				// last child moves over, guarded by the old parent
				// separator; the sibling's last separator moves up.
				e := left.sep(left.count() - 1)
				lc := left.child(left.count())
				left.setCount(left.count() - 1)
				t.prependToInternal(child, n.sep(ci-1), lc)
				n.setSep(ci-1, e)
			}
			left.release()
			return nil
		}
		left.release()
	}
	if ci < n.count() {
		right, err := t.get(n.child(ci + 1))
		if err != nil {
			return err
		}
		canBorrow := (childHeight == 1 && right.count() > t.minLeaf()) ||
			(childHeight > 1 && right.count() > t.minInt())
		if canBorrow {
			if right, err = t.writable(right); err != nil {
				return err
			}
			if n.child(ci+1) != right.id() {
				n.setChild(ci+1, right.id())
			}
			if childHeight == 1 {
				e := right.entry(0)
				right.removeEntryAt(0)
				child.insertEntryAt(child.count(), e)
				n.setSep(ci, right.entry(0))
			} else {
				oldSep := n.sep(ci)
				rc := right.child(0)
				up := right.sep(0)
				right.setChild(0, right.child(1))
				right.removeSepAt(0)
				child.insertSepAt(child.count(), oldSep, rc)
				n.setSep(ci, up)
			}
			right.release()
			return nil
		}
		right.release()
	}

	// Merge with a sibling. Prefer merging child into its left sibling.
	// The surviving (left) node is mutated and must be writable; the dying
	// (right) node is only read, then superseded or freed by mergeNodes.
	if ci > 0 {
		left, err := t.get(n.child(ci - 1))
		if err != nil {
			return err
		}
		if left, err = t.writable(left); err != nil {
			return err
		}
		if n.child(ci-1) != left.id() {
			n.setChild(ci-1, left.id())
		}
		err = t.mergeNodes(n, ci-1, left, child, childHeight)
		left.release()
		return err
	}
	right, err := t.get(n.child(ci + 1))
	if err != nil {
		return err
	}
	err = t.mergeNodes(n, ci, child, right, childHeight)
	right.release()
	return err
}

// prependToInternal rebuilds an internal node with (sep, leftmostChild)
// prepended. Counts are small (≤ intCap), so copying is fine.
func (t *Tree) prependToInternal(n node, sep Entry, newChild0 pagestore.PageID) {
	c := n.count()
	seps := make([]Entry, c)
	children := make([]pagestore.PageID, c+1)
	for i := 0; i < c; i++ {
		seps[i] = n.sep(i)
	}
	for i := 0; i <= c; i++ {
		children[i] = n.child(i)
	}
	n.setCount(0)
	n.setChild(0, newChild0)
	n.insertSepAt(0, sep, children[0])
	for i := 0; i < c; i++ {
		n.insertSepAt(i+1, seps[i], children[i+1])
	}
}

// mergeNodes folds right into left (children ci and ci+1 of n) and removes
// the separating key from n. For leaves the handicap slots combine in the
// conservative direction of their kind.
func (t *Tree) mergeNodes(n node, sepIdx int, left, right node, childHeight int) error {
	if childHeight == 1 {
		base := left.count()
		for j := 0; j < right.count(); j++ {
			left.setEntry(base+j, right.entry(j))
		}
		left.setCount(base + right.count())
		for s := 0; s < left.numHandicaps(); s++ {
			left.setHandicap(s, t.cfg.HandicapKinds[s].Combine(left.handicap(s), right.handicap(s)))
		}
		// Unlink right from the leaf chain, resolving its forward link
		// through the overrides (an un-owned right's bytes may predate
		// this batch's moves).
		rn := t.effNext(right.id(), right.next())
		left.setNext(rn)
		if rn != pagestore.InvalidPage {
			if err := t.setChainPrev(rn, left.id()); err != nil {
				return err
			}
		}
	} else {
		down := n.sep(sepIdx)
		base := left.count()
		left.insertSepAt(base, down, right.child(0))
		for j := 0; j < right.count(); j++ {
			left.insertSepAt(base+1+j, right.sep(j), right.child(j+1))
		}
	}
	rid := right.id()
	n.removeSepAt(sepIdx)
	if t.cow != nil {
		delete(t.ovNext, rid)
		delete(t.ovPrev, rid)
		if !t.cow.owned[rid] {
			// A published version may still sweep onto right: retire it
			// with the commit instead of freeing it now.
			t.cow.superseded = append(t.cow.superseded, rid)
			t.pages--
			return nil
		}
	}
	// right is released by the caller; freeing a pinned page is an error,
	// so defer the free until after release by remembering it.
	t.pendingFree = append(t.pendingFree, rid)
	return nil
}
