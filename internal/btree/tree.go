package btree

import (
	"errors"
	"fmt"
	"sync/atomic"

	"dualcdb/internal/pagestore"
)

// Config parameterizes a tree.
type Config struct {
	// HandicapKinds declares the per-leaf auxiliary slots: one entry per
	// slot, fixing how values merge (MinSlot or MaxSlot). May be empty for
	// a plain B⁺-tree. At most 8 slots.
	HandicapKinds []SlotKind
	// FillFactor is the target leaf occupancy for bulk loading, in (0, 1];
	// the default is 0.9.
	FillFactor float64
	// NoDecodeCache disables the view-meta cache, so every visit re-parses
	// the page header (useful as a benchmark baseline; the name predates
	// the zero-copy layout, under which no visit materializes slices
	// either way).
	NoDecodeCache bool
	// DecodeCacheNodes bounds the number of parsed headers kept per tree;
	// ≤ 0 selects the default 4096.
	DecodeCacheNodes int
	// Readahead is the number of sibling leaves fetched per vectored chain
	// read during leaf sweeps (including the demanded one); values ≤ 1
	// disable readahead (the default). Enabling it changes when pages are
	// read, not how many distinct pages a full sweep touches, but
	// early-terminated sweeps may prefetch pages they never visit — keep
	// it off when reproducing the paper's exact per-query I/O counts.
	Readahead int
}

// Tree is a disk-based B⁺-tree over (float64, uint32) composite keys.
type Tree struct {
	pool  *pagestore.Pool
	cfg   Config
	root  pagestore.PageID
	hgt   int // 1 = root is a leaf
	size  int
	pages int // pages owned by this tree

	// pendingFree holds pages emptied by merges; they are still pinned when
	// the merge runs, so Delete frees them after the recursion unwinds.
	pendingFree []pagestore.PageID

	// cache holds parsed page headers (view metadata), validated against
	// frame version stamps; nil when Config.NoDecodeCache is set.
	cache *viewCache

	// Traversal counters (atomics: sweeps run concurrently). descents
	// counts root-to-leaf searches, leavesVisited the leaves snapshotted
	// by chain sweeps.
	descents      atomic.Uint64
	leavesVisited atomic.Uint64

	leafCap int
	intCap  int
}

// ErrDuplicate is returned when inserting an entry that already exists.
var ErrDuplicate = errors.New("btree: duplicate entry")

// ErrNotEmpty is returned when bulk loading a non-empty tree.
var ErrNotEmpty = errors.New("btree: tree not empty")

// New creates an empty tree whose pages are allocated from pool.
func New(pool *pagestore.Pool, cfg Config) (*Tree, error) {
	if len(cfg.HandicapKinds) > 8 {
		return nil, fmt.Errorf("btree: too many handicap slots (%d)", len(cfg.HandicapKinds))
	}
	if cfg.FillFactor <= 0 || cfg.FillFactor > 1 {
		cfg.FillFactor = 0.9
	}
	t := &Tree{pool: pool, cfg: cfg}
	if !cfg.NoDecodeCache {
		t.cache = newViewCache(cfg.DecodeCacheNodes, pool)
	}
	ps := pool.PageSize()
	t.leafCap = (ps - headerSize - 8*len(cfg.HandicapKinds)) / entrySize
	t.intCap = (ps - headerSize - 4) / intRecSize
	if t.leafCap < 3 || t.intCap < 3 {
		return nil, fmt.Errorf("btree: page size %d too small", ps)
	}
	f, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	n := wrap(f)
	n.initLeaf(len(cfg.HandicapKinds), cfg.HandicapKinds)
	t.root = n.id()
	t.hgt = 1
	t.pages = 1
	n.release()
	return t, nil
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 = a single leaf).
func (t *Tree) Height() int { return t.hgt }

// Pages returns the number of pages the tree occupies.
func (t *Tree) Pages() int { return t.pages }

// LeafCapacity returns the per-leaf entry capacity (for tests and sizing).
func (t *Tree) LeafCapacity() int { return t.leafCap }

// Meta is the tree's persistent root metadata: everything needed to
// reattach to its pages after a restart.
type Meta struct {
	Root   pagestore.PageID
	Height int
	Size   int
	Pages  int
}

// Meta snapshots the tree's root metadata.
func (t *Tree) Meta() Meta {
	return Meta{Root: t.root, Height: t.hgt, Size: t.size, Pages: t.pages}
}

// Restore reattaches a tree to existing pages described by m. The Config
// must match the one the tree was created with (same handicap slots and
// page size); this is checked against the root page where possible.
func Restore(pool *pagestore.Pool, cfg Config, m Meta) (*Tree, error) {
	if len(cfg.HandicapKinds) > 8 {
		return nil, fmt.Errorf("btree: too many handicap slots (%d)", len(cfg.HandicapKinds))
	}
	if cfg.FillFactor <= 0 || cfg.FillFactor > 1 {
		cfg.FillFactor = 0.9
	}
	if m.Root == pagestore.InvalidPage || m.Height < 1 {
		return nil, fmt.Errorf("btree: invalid metadata %+v", m)
	}
	t := &Tree{pool: pool, cfg: cfg, root: m.Root, hgt: m.Height, size: m.Size, pages: m.Pages}
	if !cfg.NoDecodeCache {
		t.cache = newViewCache(cfg.DecodeCacheNodes, pool)
	}
	ps := pool.PageSize()
	t.leafCap = (ps - headerSize - 8*len(cfg.HandicapKinds)) / entrySize
	t.intCap = (ps - headerSize - 4) / intRecSize
	if t.leafCap < 3 || t.intCap < 3 {
		return nil, fmt.Errorf("btree: page size %d too small", ps)
	}
	// Sanity: the root page must exist and carry a plausible node type.
	f, err := pool.Get(m.Root)
	if err != nil {
		return nil, fmt.Errorf("btree: restore root: %w", err)
	}
	n := wrap(f)
	defer n.release()
	if typ := n.data[0]; typ != typeLeaf && typ != typeInternal {
		return nil, fmt.Errorf("btree: page %d is not a node (type %d)", m.Root, typ)
	}
	if n.isLeaf() != (m.Height == 1) {
		return nil, fmt.Errorf("btree: root type inconsistent with height %d", m.Height)
	}
	if n.isLeaf() && n.numHandicaps() != len(cfg.HandicapKinds) {
		return nil, fmt.Errorf("btree: handicap slot mismatch: stored %d, config %d",
			n.numHandicaps(), len(cfg.HandicapKinds))
	}
	return t, nil
}

// NumHandicaps returns the number of per-leaf handicap slots.
func (t *Tree) NumHandicaps() int { return len(t.cfg.HandicapKinds) }

func (t *Tree) get(id pagestore.PageID) (node, error) {
	return t.getTracked(id, nil)
}

// getTracked pins a page, attributing a cache miss to rc when non-nil (the
// per-query I/O accounting of concurrent sweeps).
func (t *Tree) getTracked(id pagestore.PageID, rc *pagestore.ReadCounter) (node, error) {
	f, err := t.pool.GetTracked(id, rc)
	if err != nil {
		return node{}, err
	}
	return wrap(f), nil
}

func (t *Tree) newLeaf() (node, error) {
	f, err := t.pool.NewPage()
	if err != nil {
		return node{}, err
	}
	n := wrap(f)
	n.initLeaf(len(t.cfg.HandicapKinds), t.cfg.HandicapKinds)
	t.pages++
	return n, nil
}

func (t *Tree) newInternal() (node, error) {
	f, err := t.pool.NewPage()
	if err != nil {
		return node{}, err
	}
	n := wrap(f)
	n.initInternal()
	t.pages++
	return n, nil
}

// findLeaf descends to the leaf that owns entry e, returning it pinned.
func (t *Tree) findLeaf(e Entry) (node, error) {
	return t.findLeafTracked(e, nil)
}

// findLeafTracked is findLeaf with the descent's page reads charged to rc.
// Internal nodes are routed through the view cache when enabled, so
// repeated descents skip the header parse; the separator search itself
// always reads the pinned page bytes in place.
func (t *Tree) findLeafTracked(e Entry, rc *pagestore.ReadCounter) (node, error) {
	t.descents.Add(1)
	n, err := t.getTracked(t.root, rc)
	if err != nil {
		return node{}, err
	}
	for !n.isLeaf() {
		var child pagestore.PageID
		if t.cache != nil {
			v := n.view(t.cache.lookup(n))
			child = v.child(v.childIndex(e))
		} else {
			child = n.child(n.childIndex(e))
		}
		n.release()
		if n, err = t.getTracked(child, rc); err != nil {
			return node{}, err
		}
	}
	return n, nil
}

// DecodeCacheStats returns the view-meta cache counters (zero when the
// cache is disabled). The name predates the zero-copy layout.
func (t *Tree) DecodeCacheStats() DecodeStats {
	if t.cache == nil {
		return DecodeStats{}
	}
	return t.cache.stats()
}

// SweepStats counts tree-traversal activity: root-to-leaf descents
// (searches, sweep starts, handicap routing) and leaves snapshotted by
// chain sweeps. Monotone over the tree's lifetime.
type SweepStats struct {
	Descents      uint64 `json:"descents"`
	LeavesVisited uint64 `json:"leaves_visited"`
}

// Add accumulates other into s (for summing stats across trees).
func (s *SweepStats) Add(o SweepStats) {
	s.Descents += o.Descents
	s.LeavesVisited += o.LeavesVisited
}

// SweepStats returns the tree's traversal counters.
func (t *Tree) SweepStats() SweepStats {
	return SweepStats{
		Descents:      t.descents.Load(),
		LeavesVisited: t.leavesVisited.Load(),
	}
}

// Contains reports whether the exact entry (key, tid) is present.
func (t *Tree) Contains(key float64, tid uint32) (bool, error) {
	e := Entry{Key: key, TID: tid}
	leaf, err := t.findLeaf(e)
	if err != nil {
		return false, err
	}
	defer leaf.release()
	i := leaf.searchLeaf(e)
	return i < leaf.count() && leaf.entry(i) == e, nil
}

// Insert adds (key, tid). ErrDuplicate if the exact pair is present.
func (t *Tree) Insert(key float64, tid uint32) error {
	e := Entry{Key: key, TID: tid}
	sep, right, err := t.insertInto(t.root, t.hgt, e)
	if err != nil {
		return err
	}
	if right != pagestore.InvalidPage {
		// Root split: grow the tree.
		nr, err := t.newInternal()
		if err != nil {
			return err
		}
		nr.setChild(0, t.root)
		nr.insertSepAt(0, sep, right)
		t.root = nr.id()
		t.hgt++
		nr.release()
	}
	t.size++
	return nil
}

// insertInto inserts e under the subtree rooted at id (at the given height)
// and reports a split as (separator, newRightPage).
func (t *Tree) insertInto(id pagestore.PageID, height int, e Entry) (Entry, pagestore.PageID, error) {
	n, err := t.get(id)
	if err != nil {
		return Entry{}, pagestore.InvalidPage, err
	}
	defer n.release()

	if height == 1 {
		i := n.searchLeaf(e)
		if i < n.count() && n.entry(i) == e {
			return Entry{}, pagestore.InvalidPage, fmt.Errorf("%w: (%g, %d)", ErrDuplicate, e.Key, e.TID)
		}
		if n.count() < t.leafCap {
			n.insertEntryAt(i, e)
			return Entry{}, pagestore.InvalidPage, nil
		}
		// Split the leaf: right half moves to a new page. Handicap slots
		// are copied to both halves — conservative and always sound
		// (see DESIGN.md §4.4 "Handicap maintenance").
		right, err := t.newLeaf()
		if err != nil {
			return Entry{}, pagestore.InvalidPage, err
		}
		defer right.release()
		mid := n.count() / 2
		for j := mid; j < n.count(); j++ {
			right.setEntry(j-mid, n.entry(j))
		}
		right.setCount(n.count() - mid)
		n.setCount(mid)
		for s := 0; s < n.numHandicaps(); s++ {
			right.setHandicap(s, n.handicap(s))
		}
		// Chain: n <-> right <-> oldNext.
		oldNext := n.next()
		right.setNext(oldNext)
		right.setPrev(n.id())
		n.setNext(right.id())
		if oldNext != pagestore.InvalidPage {
			nn, err := t.get(oldNext)
			if err != nil {
				return Entry{}, pagestore.InvalidPage, err
			}
			nn.setPrev(right.id())
			nn.release()
		}
		sep := right.entry(0)
		if e.Less(sep) {
			n.insertEntryAt(n.searchLeaf(e), e)
		} else {
			right.insertEntryAt(right.searchLeaf(e), e)
		}
		return sep, right.id(), nil
	}

	ci := n.childIndex(e)
	sep, newChild, err := t.insertInto(n.child(ci), height-1, e)
	if err != nil || newChild == pagestore.InvalidPage {
		return Entry{}, pagestore.InvalidPage, err
	}
	if n.count() < t.intCap {
		n.insertSepAt(ci, sep, newChild)
		return Entry{}, pagestore.InvalidPage, nil
	}
	// Split the internal node around its median separator.
	right, err := t.newInternal()
	if err != nil {
		return Entry{}, pagestore.InvalidPage, err
	}
	defer right.release()
	c := n.count()
	mid := c / 2
	up := n.sep(mid)
	right.setChild(0, n.child(mid+1))
	for j := mid + 1; j < c; j++ {
		right.insertSepAt(j-mid-1, n.sep(j), n.child(j+1))
	}
	n.setCount(mid)
	// Route the pending separator into the correct half.
	if sep.Less(up) {
		n.insertSepAt(n.childIndex(sep), sep, newChild)
	} else {
		right.insertSepAt(right.childIndex(sep), sep, newChild)
	}
	return up, right.id(), nil
}

// Delete removes (key, tid), reporting whether it was present.
func (t *Tree) Delete(key float64, tid uint32) (bool, error) {
	e := Entry{Key: key, TID: tid}
	found, _, err := t.deleteFrom(t.root, t.hgt, e)
	// Free pages emptied by merges now that every frame is released.
	for _, id := range t.pendingFree {
		if ferr := t.pool.FreePage(id); ferr != nil && err == nil {
			err = ferr
		}
		t.pages--
	}
	t.pendingFree = t.pendingFree[:0]
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	t.size--
	// Collapse the root if it became a pass-through internal node.
	for t.hgt > 1 {
		r, err := t.get(t.root)
		if err != nil {
			return true, err
		}
		if r.isLeaf() || r.count() > 0 {
			r.release()
			break
		}
		child := r.child(0)
		old := r.id()
		r.release()
		if err := t.pool.FreePage(old); err != nil {
			return true, err
		}
		t.pages--
		t.root = child
		t.hgt--
	}
	return true, nil
}

// Minimum occupancy. A split of a full leaf (leafCap entries plus the
// pending one) leaves at least ⌊leafCap/2⌋ entries on each side; a split
// of a full internal node (intCap separators, one of which moves up)
// leaves at least ⌊(intCap−1)/2⌋ separators on each side.
func (t *Tree) minLeaf() int { return t.leafCap / 2 }
func (t *Tree) minInt() int  { return (t.intCap - 1) / 2 }

// deleteFrom removes e under the subtree at id; underflow tells the parent
// the node fell below minimum occupancy.
func (t *Tree) deleteFrom(id pagestore.PageID, height int, e Entry) (found, underflow bool, err error) {
	n, err := t.get(id)
	if err != nil {
		return false, false, err
	}
	defer n.release()

	if height == 1 {
		i := n.searchLeaf(e)
		if i >= n.count() || n.entry(i) != e {
			return false, false, nil
		}
		n.removeEntryAt(i)
		return true, n.count() < t.minLeaf(), nil
	}

	ci := n.childIndex(e)
	found, under, err := t.deleteFrom(n.child(ci), height-1, e)
	if err != nil || !found || !under {
		return found, false, err
	}
	if err := t.rebalanceChild(n, ci, height-1); err != nil {
		return true, false, err
	}
	return true, n.count() < t.minInt(), nil
}

// rebalanceChild restores minimum occupancy of n's ci-th child by borrowing
// from a sibling or merging with one.
func (t *Tree) rebalanceChild(n node, ci, childHeight int) error {
	child, err := t.get(n.child(ci))
	if err != nil {
		return err
	}
	defer child.release()

	// Try borrowing from the left sibling, then the right.
	if ci > 0 {
		left, err := t.get(n.child(ci - 1))
		if err != nil {
			return err
		}
		canBorrow := (childHeight == 1 && left.count() > t.minLeaf()) ||
			(childHeight > 1 && left.count() > t.minInt())
		if canBorrow {
			if childHeight == 1 {
				e := left.entry(left.count() - 1)
				left.setCount(left.count() - 1)
				child.insertEntryAt(0, e)
				n.setSep(ci-1, e)
			} else {
				// Rotate through the parent separator: the left sibling's
				// last child moves over, guarded by the old parent
				// separator; the sibling's last separator moves up.
				e := left.sep(left.count() - 1)
				lc := left.child(left.count())
				left.setCount(left.count() - 1)
				t.prependToInternal(child, n.sep(ci-1), lc)
				n.setSep(ci-1, e)
			}
			left.release()
			return nil
		}
		left.release()
	}
	if ci < n.count() {
		right, err := t.get(n.child(ci + 1))
		if err != nil {
			return err
		}
		canBorrow := (childHeight == 1 && right.count() > t.minLeaf()) ||
			(childHeight > 1 && right.count() > t.minInt())
		if canBorrow {
			if childHeight == 1 {
				e := right.entry(0)
				right.removeEntryAt(0)
				child.insertEntryAt(child.count(), e)
				n.setSep(ci, right.entry(0))
			} else {
				oldSep := n.sep(ci)
				rc := right.child(0)
				up := right.sep(0)
				right.setChild(0, right.child(1))
				right.removeSepAt(0)
				child.insertSepAt(child.count(), oldSep, rc)
				n.setSep(ci, up)
			}
			right.release()
			return nil
		}
		right.release()
	}

	// Merge with a sibling. Prefer merging child into its left sibling.
	if ci > 0 {
		left, err := t.get(n.child(ci - 1))
		if err != nil {
			return err
		}
		err = t.mergeNodes(n, ci-1, left, child, childHeight)
		left.release()
		return err
	}
	right, err := t.get(n.child(ci + 1))
	if err != nil {
		return err
	}
	err = t.mergeNodes(n, ci, child, right, childHeight)
	right.release()
	return err
}

// prependToInternal rebuilds an internal node with (sep, leftmostChild)
// prepended. Counts are small (≤ intCap), so copying is fine.
func (t *Tree) prependToInternal(n node, sep Entry, newChild0 pagestore.PageID) {
	c := n.count()
	seps := make([]Entry, c)
	children := make([]pagestore.PageID, c+1)
	for i := 0; i < c; i++ {
		seps[i] = n.sep(i)
	}
	for i := 0; i <= c; i++ {
		children[i] = n.child(i)
	}
	n.setCount(0)
	n.setChild(0, newChild0)
	n.insertSepAt(0, sep, children[0])
	for i := 0; i < c; i++ {
		n.insertSepAt(i+1, seps[i], children[i+1])
	}
}

// mergeNodes folds right into left (children ci and ci+1 of n) and removes
// the separating key from n. For leaves the handicap slots combine in the
// conservative direction of their kind.
func (t *Tree) mergeNodes(n node, sepIdx int, left, right node, childHeight int) error {
	if childHeight == 1 {
		base := left.count()
		for j := 0; j < right.count(); j++ {
			left.setEntry(base+j, right.entry(j))
		}
		left.setCount(base + right.count())
		for s := 0; s < left.numHandicaps(); s++ {
			left.setHandicap(s, t.cfg.HandicapKinds[s].Combine(left.handicap(s), right.handicap(s)))
		}
		// Unlink right from the leaf chain.
		rn := right.next()
		left.setNext(rn)
		if rn != pagestore.InvalidPage {
			nn, err := t.get(rn)
			if err != nil {
				return err
			}
			nn.setPrev(left.id())
			nn.release()
		}
	} else {
		down := n.sep(sepIdx)
		base := left.count()
		left.insertSepAt(base, down, right.child(0))
		for j := 0; j < right.count(); j++ {
			left.insertSepAt(base+1+j, right.sep(j), right.child(j+1))
		}
	}
	rid := right.id()
	n.removeSepAt(sepIdx)
	// right is released by the caller; freeing a pinned page is an error,
	// so defer the free until after release by remembering it.
	t.pendingFree = append(t.pendingFree, rid)
	return nil
}
