package btree

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dualcdb/internal/pagestore"
)

// refLeaf is the old decodeNode materialization, reimplemented straight
// from the documented page layout (no shared accessor code): the
// reference the zero-copy view is checked against.
type refLeaf struct {
	entries   []Entry
	handicaps []float64
	next      pagestore.PageID
	prev      pagestore.PageID
}

func refDecodeLeaf(t *testing.T, data []byte) refLeaf {
	t.Helper()
	if data[0] != typeLeaf {
		t.Fatalf("reference decode of non-leaf page (type %d)", data[0])
	}
	if data[1] != layoutVersion {
		t.Fatalf("unexpected layout version %d", data[1])
	}
	count := int(binary.LittleEndian.Uint16(data[2:4]))
	hOff := int(binary.LittleEndian.Uint16(data[4:6]))
	eOff := int(binary.LittleEndian.Uint16(data[6:8]))
	r := refLeaf{
		next: pagestore.PageID(binary.LittleEndian.Uint32(data[8:12])),
		prev: pagestore.PageID(binary.LittleEndian.Uint32(data[12:16])),
	}
	for off := hOff; off < eOff; off += 8 {
		r.handicaps = append(r.handicaps, math.Float64frombits(binary.LittleEndian.Uint64(data[off:off+8])))
	}
	for i := 0; i < count; i++ {
		off := eOff + i*entrySize
		r.entries = append(r.entries, Entry{
			Key: math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8])),
			TID: binary.LittleEndian.Uint32(data[off+8 : off+12]),
		})
	}
	return r
}

// TestQuickViewMatchesDecode builds trees from arbitrary entry sets,
// perturbs the handicap slots, and checks every LeafView accessor against
// an independent byte-level decode of the same page — the round-trip
// guarantee that the flat layout and the view agree on arbitrary encoded
// pages.
func TestQuickViewMatchesDecode(t *testing.T) {
	f := func(keys []uint16, seed int64) bool {
		tr, pool := newTestTree(t, 256, []SlotKind{MinSlot, MaxSlot})
		rng := rand.New(rand.NewSource(seed))
		inserted := 0
		for i, k := range keys {
			if err := tr.Insert(float64(k%512)/4, uint32(i+1)); err == nil {
				inserted++
			}
		}
		for i := 0; i < 1+inserted/10; i++ {
			route := float64(rng.Intn(512)) / 4
			_ = tr.MergeHandicap(route, rng.Intn(2), rng.NormFloat64()*100)
		}
		ok := true
		err := tr.VisitLeavesAsc(math.Inf(-1), func(lv LeafView) bool {
			f, err := pool.Get(lv.Page)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Release()
			ref := refDecodeLeaf(t, f.Data())
			if lv.Len() != len(ref.entries) || lv.NumHandicaps() != len(ref.handicaps) {
				ok = false
				return false
			}
			for i, e := range ref.entries {
				if lv.Entry(i) != e || lv.Key(i) != e.Key || lv.TID(i) != e.TID {
					ok = false
					return false
				}
			}
			for i, h := range ref.handicaps {
				got := lv.Handicap(i)
				if got != h && !(math.IsNaN(got) && math.IsNaN(h)) {
					ok = false
					return false
				}
			}
			var copied []Entry
			copied = lv.AppendEntries(copied)
			for i := range copied {
				if copied[i] != ref.entries[i] {
					ok = false
					return false
				}
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestViewChainLinksMatchReference checks the meta side of the parse —
// next/prev links and the internal-node view — against the byte-level
// reference, by walking the leaf chain manually.
func TestViewChainLinksMatchReference(t *testing.T) {
	tr, pool := newTestTree(t, 256, []SlotKind{MinSlot})
	for i := 0; i < 2000; i++ {
		_ = tr.Insert(float64(i), uint32(i+1))
	}
	leaf, err := tr.findLeaf(Entry{Key: math.Inf(-1)})
	if err != nil {
		t.Fatal(err)
	}
	visited := 0
	for {
		m := parseMeta(leaf.data, leaf.frame.Version())
		ref := refDecodeLeaf(t, leaf.data)
		if m.next != ref.next || m.prev != ref.prev || int(m.count) != len(ref.entries) {
			t.Fatalf("page %d: meta (next %d, prev %d, count %d) vs reference (next %d, prev %d, count %d)",
				leaf.id(), m.next, m.prev, m.count, ref.next, ref.prev, len(ref.entries))
		}
		visited++
		next := m.next
		leaf.release()
		if next == pagestore.InvalidPage {
			break
		}
		f, err := pool.Get(next)
		if err != nil {
			t.Fatal(err)
		}
		leaf = wrap(f)
	}
	if visited < 2 {
		t.Fatalf("tree too small for a chain walk: %d leaves", visited)
	}
}

// TestViewGuardCatchesUseAfterRelease is the regression test for the view
// borrow discipline: with the runtime guard on, a LeafView smuggled out of
// its sweep callback must panic when read after the sweep released (and
// the pool recycled) its frame, instead of silently returning another
// page's bytes.
func TestViewGuardCatchesUseAfterRelease(t *testing.T) {
	EnableViewGuard(true)
	defer EnableViewGuard(false)

	// A tiny pool guarantees the released frame is recycled promptly, but
	// the guard must fire even while the frame merely sits unpinned.
	pool := pagestore.NewPool(pagestore.NewMemStore(256), 8)
	tr, err := New(pool, Config{HandicapKinds: []SlotKind{MinSlot}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		_ = tr.Insert(float64(i), uint32(i+1))
	}

	var leaked LeafView
	if err := tr.VisitLeavesAsc(math.Inf(-1), func(lv LeafView) bool {
		leaked = lv // escapes the callback: the borrow ends when visit returns
		return false
	}); err != nil {
		t.Fatal(err)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("reading a LeafView after its frame was released did not panic under the view guard")
		}
	}()
	_ = leaked.Len()
}

// TestViewGuardAllowsUseWhilePinned is the counterpart: inside the
// callback, with the frame pinned, guarded accessors must work normally.
func TestViewGuardAllowsUseWhilePinned(t *testing.T) {
	EnableViewGuard(true)
	defer EnableViewGuard(false)
	tr, _ := newTestTree(t, 256, []SlotKind{MinSlot})
	for i := 0; i < 100; i++ {
		_ = tr.Insert(float64(i), uint32(i+1))
	}
	total := 0
	if err := tr.VisitLeavesAsc(math.Inf(-1), func(lv LeafView) bool {
		for i := 0; i < lv.Len(); i++ {
			total += int(lv.TID(i))
		}
		_ = lv.Handicap(0)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if want := 100 * 101 / 2; total != want {
		t.Fatalf("guarded sweep sum = %d, want %d", total, want)
	}
}
