package btree

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"dualcdb/internal/pagestore"
)

// viewMeta is the parsed header of one page: everything a zero-copy reader
// needs that is not a per-record field. It is a small value type — caching
// it (see viewCache) costs no heap slices, unlike the old decodedNode.
type viewMeta struct {
	version    uint64
	next, prev pagestore.PageID
	count      uint16
	hOff, eOff uint16
	leaf       bool
}

// parseMeta reads a page header under the given frame version stamp.
func parseMeta(data []byte, version uint64) viewMeta {
	return viewMeta{
		version: version,
		next:    pagestore.PageID(binary.LittleEndian.Uint32(data[offNext : offNext+4])),
		prev:    pagestore.PageID(binary.LittleEndian.Uint32(data[offPrev : offPrev+4])),
		count:   binary.LittleEndian.Uint16(data[offCount : offCount+2]),
		hOff:    binary.LittleEndian.Uint16(data[offHOff : offHOff+2]),
		eOff:    binary.LittleEndian.Uint16(data[offEOff : offEOff+2]),
		leaf:    data[offType] == typeLeaf,
	}
}

// nodeView is a zero-copy reader over a pinned page: the parsed header
// plus the frame's byte slice, addressed in place through the header's
// region offsets. Constructing one allocates nothing; every accessor
// compiles to a bounds-checked load off the page buffer.
//
// A view BORROWS the frame it was built from. It is valid only while that
// pin is held: Release hands the frame back to the pool, which recycles
// the buffer for other pages, so a view used after its frame's Release
// reads another page's bytes. The dualvet pinleak analyzer machine-checks
// this lifecycle (a view must not be used after, or escape past, its
// frame's release); EnableViewGuard adds a runtime check for tests.
type nodeView struct {
	frame *pagestore.Frame
	data  []byte
	page  pagestore.PageID
	meta  viewMeta
}

// view overlays a parsed header onto the pinned node n. All view
// construction funnels through here (and through Tree.leafView), which is
// what lets the borrow analyzer tie each view to the frame it borrows.
func (n node) view(m viewMeta) nodeView {
	return nodeView{frame: n.frame, data: n.data, page: n.frame.ID(), meta: m}
}

// viewGuard enables the runtime borrow check on every LeafView accessor.
// Off by default: the guard costs one atomic load per accessor, and the
// static analyzer is the primary enforcement.
var viewGuard atomic.Bool

// EnableViewGuard switches the runtime view-borrow guard on or off
// (process-wide). With the guard on, reading a LeafView after its backing
// frame was released — or after the frame was recycled for another page —
// panics instead of silently returning another page's bytes. Tests use
// this to pin down the failure mode the static checker prevents.
func EnableViewGuard(on bool) { viewGuard.Store(on) }

// check panics when the view's borrow has ended: the frame is gone,
// unpinned, recycled for a different page, or mutated past the version
// the view was parsed under.
func (v nodeView) check() {
	if v.frame == nil || !v.frame.Pinned() || v.frame.ID() != v.page || v.frame.Version() != v.meta.version {
		panic(fmt.Sprintf("btree: view of page %d used after its frame was released", v.page))
	}
}

func (v nodeView) len() int { return int(v.meta.count) }

func (v nodeView) key(i int) float64 {
	off := int(v.meta.eOff) + i*entrySize
	return math.Float64frombits(binary.LittleEndian.Uint64(v.data[off : off+8]))
}

func (v nodeView) tid(i int) uint32 {
	off := int(v.meta.eOff) + i*entrySize
	return binary.LittleEndian.Uint32(v.data[off+8 : off+12])
}

func (v nodeView) entry(i int) Entry {
	off := int(v.meta.eOff) + i*entrySize
	return Entry{
		Key: math.Float64frombits(binary.LittleEndian.Uint64(v.data[off : off+8])),
		TID: binary.LittleEndian.Uint32(v.data[off+8 : off+12]),
	}
}

func (v nodeView) numHandicaps() int { return int(v.meta.eOff-v.meta.hOff) / 8 }

func (v nodeView) handicap(i int) float64 {
	off := int(v.meta.hOff) + i*8
	return math.Float64frombits(binary.LittleEndian.Uint64(v.data[off : off+8]))
}

func (v nodeView) child(i int) pagestore.PageID {
	if i == 0 {
		h := int(v.meta.hOff)
		return pagestore.PageID(binary.LittleEndian.Uint32(v.data[h : h+4]))
	}
	off := int(v.meta.eOff) + (i-1)*intRecSize + 12
	return pagestore.PageID(binary.LittleEndian.Uint32(v.data[off : off+4]))
}

func (v nodeView) sep(i int) Entry {
	off := int(v.meta.eOff) + i*intRecSize
	return Entry{
		Key: math.Float64frombits(binary.LittleEndian.Uint64(v.data[off : off+8])),
		TID: binary.LittleEndian.Uint32(v.data[off+8 : off+12]),
	}
}

// childIndex mirrors node.childIndex through the view.
func (v nodeView) childIndex(e Entry) int {
	lo, hi := 0, v.len()
	for lo < hi {
		mid := (lo + hi) / 2
		if e.Less(v.sep(mid)) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// LeafView is the zero-copy window onto one leaf handed to sweep
// callbacks: accessors read the pinned page bytes in place, so a sweep
// that touches every key allocates nothing. The view borrows the leaf's
// frame and is valid only for the duration of the callback — the sweep
// releases the frame when the callback returns, after which the buffer
// may be recycled for a different page. Callers must not retain a
// LeafView (or anything derived from its bytes without copying) past the
// callback; AppendEntries is the sanctioned way to copy entries out.
type LeafView struct {
	Page pagestore.PageID
	v    nodeView
}

// Len returns the number of entries in the leaf.
func (lv LeafView) Len() int {
	if viewGuard.Load() {
		lv.v.check()
	}
	return lv.v.len()
}

// Entry returns entry i in composite key order.
func (lv LeafView) Entry(i int) Entry {
	if viewGuard.Load() {
		lv.v.check()
	}
	return lv.v.entry(i)
}

// Key returns entry i's key without decoding its tuple id.
func (lv LeafView) Key(i int) float64 {
	if viewGuard.Load() {
		lv.v.check()
	}
	return lv.v.key(i)
}

// TID returns entry i's tuple id without decoding its key.
func (lv LeafView) TID(i int) uint32 {
	if viewGuard.Load() {
		lv.v.check()
	}
	return lv.v.tid(i)
}

// NumHandicaps returns the number of handicap slots stored on the leaf.
func (lv LeafView) NumHandicaps() int {
	if viewGuard.Load() {
		lv.v.check()
	}
	return lv.v.numHandicaps()
}

// Handicap returns the value of handicap slot `slot`.
func (lv LeafView) Handicap(slot int) float64 {
	if viewGuard.Load() {
		lv.v.check()
	}
	return lv.v.handicap(slot)
}

// AppendEntries appends the leaf's entries to dst and returns it — the
// copy-out primitive for callers that need the entries to outlive the
// sweep callback.
func (lv LeafView) AppendEntries(dst []Entry) []Entry {
	if viewGuard.Load() {
		lv.v.check()
	}
	n := lv.v.len()
	if cap(dst)-len(dst) < n {
		grown := make([]Entry, len(dst), len(dst)+n)
		copy(grown, dst)
		dst = grown
	}
	for i := 0; i < n; i++ {
		dst = append(dst, lv.v.entry(i))
	}
	return dst
}
