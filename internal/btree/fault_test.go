package btree

import (
	"errors"
	"math"
	"testing"

	"dualcdb/internal/pagestore"
)

// Fault-injection tests: the tree must surface pager errors and remain
// structurally sound once the fault clears.

func newFaultTree(t *testing.T) (*Tree, *pagestore.FaultStore, *pagestore.Pool) {
	t.Helper()
	fs := pagestore.NewFaultStore(pagestore.NewMemStore(256))
	pool := pagestore.NewPool(fs, 64)
	tr, err := New(pool, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, fs, pool
}

func TestInsertSurfacesAllocFault(t *testing.T) {
	tr, fs, _ := newFaultTree(t)
	// Fill one leaf so the next insert needs an allocation (split).
	for i := 0; i < tr.LeafCapacity(); i++ {
		if err := tr.Insert(float64(i), uint32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	fs.FailAllocAfter(1)
	err := tr.Insert(1e9, 99999)
	if !errors.Is(err, pagestore.ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	fs.Disarm()
	// The tree must still be consistent and usable.
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1e9, 99999); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchSurfacesReadFault(t *testing.T) {
	tr, fs, pool := newFaultTree(t)
	for i := 0; i < 500; i++ {
		if err := tr.Insert(float64(i), uint32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	fs.FailReadAfter(2)
	err := tr.VisitLeavesAsc(math.Inf(-1), func(LeafView) bool { return true })
	if !errors.Is(err, pagestore.ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	fs.Disarm()
	got, err := tr.ScanAll()
	if err != nil || len(got) != 500 {
		t.Fatalf("recovery scan: %d, %v", len(got), err)
	}
}

func TestDeleteSurfacesReadFault(t *testing.T) {
	tr, fs, pool := newFaultTree(t)
	for i := 0; i < 500; i++ {
		if err := tr.Insert(float64(i), uint32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	fs.FailReadAfter(1)
	if _, err := tr.Delete(250, 251); !errors.Is(err, pagestore.ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	fs.Disarm()
	found, err := tr.Delete(250, 251)
	if err != nil || !found {
		t.Fatalf("recovery delete: %v %v", found, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
