package btree

import (
	"math"
	"sort"
	"testing"
)

func TestVisitLeavesAsc(t *testing.T) {
	tr, _ := newTestTree(t, 256, nil)
	for i := 0; i < 500; i++ {
		_ = tr.Insert(float64(i), uint32(i+1))
	}
	// Sweep upward from 250: must see every key ≥ 250 (plus leading keys in
	// the starting leaf) in order, and never a leaf entirely below 250.
	var seen []float64
	err := tr.VisitLeavesAsc(250, func(lv LeafView) bool {
		for i := 0; i < lv.Len(); i++ {
			seen = append(seen, lv.Key(i))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 || seen[len(seen)-1] != 499 {
		t.Fatalf("sweep end = %v", seen[len(seen)-1])
	}
	// All keys ≥ 250 present.
	cnt := 0
	for _, k := range seen {
		if k >= 250 {
			cnt++
		}
	}
	if cnt != 250 {
		t.Fatalf("saw %d keys ≥ 250, want 250", cnt)
	}
	if !sort.Float64sAreSorted(seen) {
		t.Fatal("ascending sweep out of order")
	}
}

func TestVisitLeavesDesc(t *testing.T) {
	tr, _ := newTestTree(t, 256, nil)
	for i := 0; i < 500; i++ {
		_ = tr.Insert(float64(i), uint32(i+1))
	}
	var seen []float64
	err := tr.VisitLeavesDesc(250, func(lv LeafView) bool {
		for i := lv.Len() - 1; i >= 0; i-- {
			seen = append(seen, lv.Key(i))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen[len(seen)-1] != 0 {
		t.Fatalf("descending sweep must reach the smallest key, got %v", seen[len(seen)-1])
	}
	cnt := 0
	for _, k := range seen {
		if k <= 250 {
			cnt++
		}
	}
	if cnt != 251 {
		t.Fatalf("saw %d keys ≤ 250, want 251", cnt)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] > seen[i-1] {
			t.Fatal("descending sweep out of order")
		}
	}
}

func TestSweepEarlyStop(t *testing.T) {
	tr, _ := newTestTree(t, 256, nil)
	for i := 0; i < 500; i++ {
		_ = tr.Insert(float64(i), uint32(i+1))
	}
	leaves := 0
	_ = tr.VisitLeavesAsc(0, func(lv LeafView) bool {
		leaves++
		return leaves < 3
	})
	if leaves != 3 {
		t.Fatalf("visited %d leaves, want 3", leaves)
	}
}

func TestAscendRange(t *testing.T) {
	tr, _ := newTestTree(t, 256, nil)
	for i := 0; i < 1000; i++ {
		_ = tr.Insert(float64(i)/10, uint32(i+1))
	}
	var keys []float64
	err := tr.AscendRange(25, 50, func(e Entry) bool {
		keys = append(keys, e.Key)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 || keys[0] != 25 || keys[len(keys)-1] != 50 {
		t.Fatalf("range = [%v..%v] over %d keys", keys[0], keys[len(keys)-1], len(keys))
	}
	if len(keys) != 251 {
		t.Fatalf("got %d keys, want 251", len(keys))
	}
}

func TestHandicapIdentityAndMerge(t *testing.T) {
	tr, _ := newTestTree(t, 256, []SlotKind{MinSlot, MaxSlot})
	for i := 0; i < 100; i++ {
		_ = tr.Insert(float64(i), uint32(i+1))
	}
	// Fresh slots must hold identities.
	err := tr.VisitLeavesAsc(math.Inf(-1), func(lv LeafView) bool {
		if !math.IsInf(lv.Handicap(0), 1) || !math.IsInf(lv.Handicap(1), -1) {
			t.Fatalf("handicaps not identity: (%v, %v)", lv.Handicap(0), lv.Handicap(1))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Merge a low value into the leaf owning key 50.
	if err := tr.MergeHandicap(50, 0, 7.5); err != nil {
		t.Fatal(err)
	}
	if err := tr.MergeHandicap(50, 0, 9.0); err != nil { // min keeps 7.5
		t.Fatal(err)
	}
	if err := tr.MergeHandicap(50, 1, 3.0); err != nil { // max slot
		t.Fatal(err)
	}
	if err := tr.MergeHandicap(50, 1, 2.0); err != nil { // max keeps 3.0
		t.Fatal(err)
	}
	found := false
	_ = tr.VisitLeavesAsc(50, func(lv LeafView) bool {
		for i := 0; i < lv.Len(); i++ {
			if lv.Key(i) == 50 {
				found = true
				if lv.Handicap(0) != 7.5 {
					t.Fatalf("min slot = %v, want 7.5", lv.Handicap(0))
				}
				if lv.Handicap(1) != 3.0 {
					t.Fatalf("max slot = %v, want 3.0", lv.Handicap(1))
				}
			}
		}
		return false // only the first leaf
	})
	if !found {
		t.Fatal("key 50 not in first swept leaf")
	}
}

func TestHandicapSurvivesSplitsConservatively(t *testing.T) {
	// After merging a handicap and then forcing splits, the leaf owning the
	// original route key must still carry a slot value ≤ the merged one
	// (MinSlot: conservative means "not larger than truth").
	tr, _ := newTestTree(t, 256, []SlotKind{MinSlot})
	for i := 0; i < 50; i++ {
		_ = tr.Insert(float64(i), uint32(i+1))
	}
	if err := tr.MergeHandicap(25, 0, 1.25); err != nil {
		t.Fatal(err)
	}
	// Insert plenty more to split the region repeatedly.
	for i := 50; i < 2000; i++ {
		_ = tr.Insert(float64(i%50)+0.5, uint32(i+1))
	}
	var got float64 = math.Inf(1)
	_ = tr.VisitLeavesAsc(25, func(lv LeafView) bool {
		got = lv.Handicap(0)
		return false
	})
	if got > 1.25 {
		t.Fatalf("handicap after splits = %v, must be ≤ 1.25", got)
	}
}

func TestHandicapMergeOnLeafMerge(t *testing.T) {
	tr, _ := newTestTree(t, 256, []SlotKind{MinSlot})
	for i := 0; i < 400; i++ {
		_ = tr.Insert(float64(i), uint32(i+1))
	}
	_ = tr.MergeHandicap(10, 0, 5)
	_ = tr.MergeHandicap(390, 0, 2)
	// Delete almost everything to force merges all the way down.
	for i := 0; i < 399; i++ {
		if _, err := tr.Delete(float64(i), uint32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The surviving single leaf must hold the conservative min of all
	// merged handicaps.
	_ = tr.VisitLeavesAsc(math.Inf(-1), func(lv LeafView) bool {
		if lv.Handicap(0) > 2 {
			t.Fatalf("merged handicap = %v, want ≤ 2", lv.Handicap(0))
		}
		return false
	})
}

func TestResetHandicaps(t *testing.T) {
	tr, _ := newTestTree(t, 256, []SlotKind{MinSlot, MaxSlot})
	for i := 0; i < 300; i++ {
		_ = tr.Insert(float64(i), uint32(i+1))
	}
	_ = tr.MergeHandicap(0, 0, -100)
	_ = tr.MergeHandicap(299, 1, 100)
	if err := tr.ResetHandicaps(); err != nil {
		t.Fatal(err)
	}
	_ = tr.VisitLeavesAsc(math.Inf(-1), func(lv LeafView) bool {
		if !math.IsInf(lv.Handicap(0), 1) || !math.IsInf(lv.Handicap(1), -1) {
			t.Fatalf("reset failed: (%v, %v)", lv.Handicap(0), lv.Handicap(1))
		}
		return true
	})
}

func TestSweepIOCost(t *testing.T) {
	// The defining property of the Section 3 structure: a query's leaf
	// sweep costs one page access per visited leaf plus the root-to-leaf
	// descent — O(log_B n + t).
	tr, pool := newTestTree(t, 256, nil)
	for i := 0; i < 5000; i++ {
		_ = tr.Insert(float64(i), uint32(i+1))
	}
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	leaves := 0
	_ = tr.VisitLeavesAsc(4000, func(lv LeafView) bool {
		leaves++
		return lv.Key(lv.Len()-1) < 4999
	})
	st := pool.Stats()
	maxIO := uint64(leaves + tr.Height())
	if st.PhysicalReads > maxIO {
		t.Fatalf("sweep cost %d reads for %d leaves, height %d", st.PhysicalReads, leaves, tr.Height())
	}
}
