package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 || len(s.Buckets) != 0 {
		t.Fatalf("zero histogram snapshot not empty: %+v", s)
	}
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 1010 {
		t.Fatalf("sum = %d, want 1010", s.Sum)
	}
	if s.Max != 1000 {
		t.Fatalf("max = %d, want 1000", s.Max)
	}
	// v=0 -> bucket 0, v=1 -> bucket 1, v=2,3 -> bucket 2, v=4 ->
	// bucket 3, v=1000 -> bucket 10: five nonzero buckets.
	if len(s.Buckets) != 5 {
		t.Fatalf("buckets = %+v, want 5 nonzero", s.Buckets)
	}
	var n uint64
	for _, b := range s.Buckets {
		if b.Lo >= b.Hi {
			t.Fatalf("bucket range inverted: %+v", b)
		}
		n += b.Count
	}
	if n != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", n, s.Count)
	}
}

func TestHistogramRecordDurationClampsNegative(t *testing.T) {
	var h Histogram
	h.RecordDuration(-time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 {
		t.Fatalf("negative duration not clamped: %+v", s)
	}
}

// TestHistogramQuantileAccuracy checks the interpolated estimates
// against a reference sort on random samples from several
// distributions. Log2 buckets guarantee the estimate is within a
// factor of 2 of the true sample quantile; assert with headroom for
// interpolation at bucket edges.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	dists := map[string]func() uint64{
		"uniform":   func() uint64 { return uint64(rng.Intn(1_000_000)) },
		"exp":       func() uint64 { return uint64(rng.ExpFloat64() * 50_000) },
		"lognormal": func() uint64 { return uint64(math.Exp(rng.NormFloat64()*2 + 8)) },
	}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			var h Histogram
			samples := make([]uint64, 20_000)
			for i := range samples {
				v := draw()
				samples[i] = v
				h.Record(v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			s := h.Snapshot()
			for _, tc := range []struct {
				q   float64
				got float64
			}{{0.50, s.P50}, {0.95, s.P95}, {0.99, s.P99}} {
				exact := float64(samples[int(tc.q*float64(len(samples)-1))])
				if exact == 0 {
					continue
				}
				ratio := tc.got / exact
				if ratio < 0.45 || ratio > 2.2 {
					t.Errorf("p%v = %.0f, exact %.0f (ratio %.2f, want within ~2x)",
						tc.q*100, tc.got, exact, ratio)
				}
			}
		})
	}
}

// TestHistogramConcurrentRecordSnapshot drives Record and Snapshot
// from many goroutines; run under -race this is the lock-freedom
// proof, and the final snapshot must account for every observation.
func TestHistogramConcurrentRecordSnapshot(t *testing.T) {
	var h Histogram
	const (
		writers = 8
		perW    = 5000
	)
	var writersWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	readerWG.Add(1)
	go func() { // concurrent reader
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				if s.Count > writers*perW {
					t.Errorf("snapshot count %d exceeds writes", s.Count)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(seed int64) {
			defer writersWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				h.Record(uint64(rng.Intn(1 << 20)))
			}
		}(int64(w))
	}
	writersWG.Wait()
	close(stop)
	readerWG.Wait()

	s := h.Snapshot()
	if s.Count != writers*perW {
		t.Fatalf("final count = %d, want %d", s.Count, writers*perW)
	}
}
