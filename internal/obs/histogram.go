package obs

import (
	"math/bits"
	"time"
)

// numBuckets covers every uint64: bucket i counts values v with
// bits.Len64(v) == i, i.e. bucket 0 holds v=0 and bucket i (i>=1)
// holds the half-open range [2^(i-1), 2^i).
const numBuckets = 65

// Histogram is a lock-free log2-bucketed histogram. Record is a pair
// of atomic adds (plus a CAS loop for the max); Snapshot walks the 65
// buckets and interpolates quantiles. Exponential buckets trade
// resolution for a fixed footprint: any quantile estimate is within a
// factor of 2 of the true sample quantile, which is the right
// granularity for latency distributions spanning cache hits (ns) to
// cold disk sweeps (ms). The zero value is ready to use.
type Histogram struct {
	sum     Counter
	max     Counter // updated via CAS in Record
	buckets [numBuckets]Counter
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RecordDuration records a latency in nanoseconds; negative durations
// clamp to zero.
func (h *Histogram) RecordDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Count returns the number of observations recorded so far.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	return total
}

// Bucket is one nonzero histogram bucket: Count observations fell in
// the half-open value range [Lo, Hi).
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time read of a histogram. Under
// concurrent Record calls the fields are each individually correct but
// not a single consistent cut; Count is derived from the bucket reads
// so the quantiles always agree with it.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot reads the histogram and computes mean and interpolated
// p50/p95/p99.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [numBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total, Sum: h.sum.Load(), Max: h.max.Load()}
	if total == 0 {
		return s
	}
	s.Mean = float64(s.Sum) / float64(total)
	s.P50 = quantile(&counts, total, 0.50)
	s.P95 = quantile(&counts, total, 0.95)
	s.P99 = quantile(&counts, total, 0.99)
	for i, c := range counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, Bucket{Lo: bucketLo(i), Hi: bucketHi(i), Count: c})
		}
	}
	return s
}

// bucketLo returns the inclusive lower bound of bucket i.
func bucketLo(i int) uint64 {
	if i == 0 {
		return 0
	}
	return 1 << (i - 1)
}

// bucketHi returns the exclusive upper bound of bucket i.
func bucketHi(i int) uint64 {
	if i == 0 {
		return 1
	}
	if i >= 64 {
		return 1<<64 - 1
	}
	return 1 << i
}

// quantile estimates the q-quantile (q in [0,1]) by locating the
// bucket containing rank q*(total-1) and interpolating linearly inside
// its value range. With log2 buckets the estimate is within 2x of the
// true sample quantile.
func quantile(counts *[numBuckets]uint64, total uint64, q float64) float64 {
	rank := q * float64(total-1)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if cum+fc > rank {
			frac := (rank - cum + 0.5) / fc
			lo, hi := float64(bucketLo(i)), float64(bucketHi(i))
			return lo + frac*(hi-lo)
		}
		cum += fc
	}
	// Unreachable when total matches counts; be safe under racy reads.
	return float64(bucketHi(numBuckets - 1))
}
