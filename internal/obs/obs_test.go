package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryReusesMetrics(t *testing.T) {
	r := NewRegistry("test")
	c1 := r.Counter("a")
	c1.Add(3)
	if c2 := r.Counter("a"); c2 != c1 {
		t.Fatal("Counter did not return the registered instance")
	}
	g := r.Gauge("g")
	g.Set(-5)
	h := r.Histogram("h")
	h.Record(7)
	r.Func("f", func() any { return "hello" })

	snap := r.Snapshot()
	if snap["a"] != uint64(3) {
		t.Fatalf("counter snapshot = %v", snap["a"])
	}
	if snap["g"] != int64(-5) {
		t.Fatalf("gauge snapshot = %v", snap["g"])
	}
	if hs, ok := snap["h"].(HistogramSnapshot); !ok || hs.Count != 1 {
		t.Fatalf("histogram snapshot = %v", snap["h"])
	}
	if snap["f"] != "hello" {
		t.Fatalf("func snapshot = %v", snap["f"])
	}
	names := r.Names()
	if len(names) != 4 || names[0] != "a" || names[1] != "f" {
		t.Fatalf("names = %v", names)
	}
}

// TestRegistryConcurrent hammers create/use/snapshot from many
// goroutines; meaningful under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry("race")
	names := []string{"x", "y", "z"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Counter(names[i%len(names)]).Inc()
				r.Histogram("lat").Record(uint64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total uint64
	for _, n := range names {
		total += snap[n].(uint64)
	}
	if total != 8*2000 {
		t.Fatalf("counter total = %d, want %d", total, 8*2000)
	}
	if hs := snap["lat"].(HistogramSnapshot); hs.Count != 8*2000 {
		t.Fatalf("histogram count = %d, want %d", hs.Count, 8*2000)
	}
}

func TestNilObserverAndTraceAreNoOps(t *testing.T) {
	var o *Observer
	tr := o.StartQuery("q")
	if tr != nil {
		t.Fatal("nil observer returned a trace")
	}
	sp := tr.Begin(StageSweep, 0)
	sp.End(5, 1) // must not panic
	o.FinishQuery(tr, QueryInfo{})
	o.StartBatch().Done()
	if o.ObserverSnapshot() != nil {
		t.Fatal("nil observer snapshot not nil")
	}
	if o.SlowTraces() != nil {
		t.Fatal("nil observer traces not nil")
	}
	if o.Registry() != nil {
		t.Fatal("nil observer registry not nil")
	}
}

func TestObserverAggregates(t *testing.T) {
	o := New(Options{Name: "ix"})
	for i := 0; i < 3; i++ {
		tr := o.StartQuery("exist y >= x")
		sp := tr.Begin(StageSweep, 10)
		sp.End(14, 20)
		sp = tr.Begin(StageRefine, 14)
		sp.End(14, 6)
		o.FinishQuery(tr, QueryInfo{
			Path: "t2", PagesRead: 4, Candidates: 20, Results: 17,
			FalseHits: 3, LeavesSwept: 2,
		})
	}
	tr := o.StartQuery("all y <= 0")
	o.FinishQuery(tr, QueryInfo{Path: "restricted", PagesRead: 1, Candidates: 5, Results: 5})

	s := o.ObserverSnapshot()
	if s.Queries != 4 || s.Inflight != 0 {
		t.Fatalf("queries=%d inflight=%d", s.Queries, s.Inflight)
	}
	t2 := s.Paths["t2"]
	if t2.Count != 3 || t2.Pages != 12 || t2.Candidates != 60 || t2.FalseHits != 9 {
		t.Fatalf("t2 path snapshot: %+v", t2)
	}
	if s.Totals.Count != 4 || s.Totals.Pages != 13 || s.Totals.Results != 56 {
		t.Fatalf("totals: %+v", s.Totals)
	}
	sweep := s.Stages[StageSweep.String()]
	if sweep.Count != 3 || sweep.Pages != 12 || sweep.Items != 60 {
		t.Fatalf("sweep stage: %+v", sweep)
	}
	refine := s.Stages[StageRefine.String()]
	if refine.Count != 3 || refine.Pages != 0 || refine.Items != 18 {
		t.Fatalf("refine stage: %+v", refine)
	}
	if t2.Latency.Count != 3 {
		t.Fatalf("t2 latency count = %d", t2.Latency.Count)
	}
}

func TestSlowQueryLogAndRing(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	o := New(Options{
		Name:          "ix",
		SlowThreshold: time.Nanosecond, // everything is slow
		Logger:        logger,
		TraceCapacity: 2,
	})
	for i, q := range []string{"q0", "q1", "q2"} {
		tr := o.StartQuery(q)
		sp := tr.Begin(StageSweep, 0)
		sp.End(uint64(i), i)
		o.FinishQuery(tr, QueryInfo{Path: "t2", PagesRead: uint64(i)})
	}
	if got := o.ObserverSnapshot().Slow; got != 3 {
		t.Fatalf("slow count = %d, want 3", got)
	}
	trs := o.SlowTraces()
	if len(trs) != 2 { // capacity 2 keeps the newest two
		t.Fatalf("ring kept %d traces, want 2", len(trs))
	}
	if trs[0].Query != "q2" || trs[1].Query != "q1" {
		t.Fatalf("ring order: %q, %q", trs[0].Query, trs[1].Query)
	}
	if len(trs[0].Spans) != 1 || trs[0].Spans[0].Stage != "sweep" {
		t.Fatalf("trace spans: %+v", trs[0].Spans)
	}

	// Three JSON log lines, each with the structured fields.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("log lines = %d, want 3:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["msg"] != "slow query" || rec["query"] != "q2" || rec["path"] != "t2" {
		t.Fatalf("log record: %v", rec)
	}
	if _, ok := rec["stages"]; !ok {
		t.Fatalf("log record missing stage group: %v", rec)
	}
}

func TestObserverConcurrent(t *testing.T) {
	o := New(Options{SlowThreshold: time.Nanosecond, TraceCapacity: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			paths := []string{"restricted", "t1", "t2"}
			for i := 0; i < 500; i++ {
				tr := o.StartQuery("q")
				sp := tr.Begin(StageSweep, 0)
				sp.End(1, 1)
				o.FinishQuery(tr, QueryInfo{Path: paths[i%3], PagesRead: 1})
				if i%50 == 0 {
					_ = o.ObserverSnapshot()
					_ = o.SlowTraces()
				}
			}
		}(w)
	}
	wg.Wait()
	s := o.ObserverSnapshot()
	if s.Queries != 8*500 || s.Totals.Count != 8*500 || s.Totals.Pages != 8*500 {
		t.Fatalf("concurrent totals: queries=%d totals=%+v", s.Queries, s.Totals)
	}
}

func TestDebugMux(t *testing.T) {
	o := New(Options{SlowThreshold: time.Nanosecond})
	tr := o.StartQuery("exist y >= 2x")
	o.FinishQuery(tr, QueryInfo{Path: "t2", PagesRead: 7})
	mux := DebugMux(func() any { return map[string]int{"pages": 42} }, o)

	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) map[string]any {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		var v map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return v
	}

	if v := get("/debug/stats"); v["pages"] != float64(42) {
		t.Fatalf("/debug/stats: %v", v)
	}
	metrics := get("/debug/metrics")
	if metrics["queries.total"] != float64(1) {
		t.Fatalf("/debug/metrics: %v", metrics["queries.total"])
	}
	resp, err := srv.Client().Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var trs []TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&trs); err != nil {
		t.Fatal(err)
	}
	if len(trs) != 1 || trs[0].Query != "exist y >= 2x" || trs[0].Pages != 7 {
		t.Fatalf("/debug/traces: %+v", trs)
	}
}
