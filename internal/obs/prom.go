package obs

import (
	"fmt"
	"io"
	"math"
	"reflect"
	"runtime/metrics"
	"sort"
	"strconv"
)

// Prometheus text exposition (format version 0.0.4), hand-written over
// the Registry snapshot — no client library. The mapping:
//
//   - Counter           -> counter
//   - Gauge             -> gauge
//   - Histogram         -> histogram: the log2 buckets become cumulative
//     `le` series (each bucket's exclusive upper bound is its `le`,
//     terminated by `+Inf`), plus `_sum` and `_count`
//   - Func              -> gauges; struct results are flattened one
//     numeric field at a time with snake_case suffixes
//
// Metric names are prefixed `dualcdb_<registry>_` and sanitized to the
// Prometheus charset ([a-zA-Z0-9_:], '.' and friends become '_'), so
// "queries.total" in registry "index" exports as
// dualcdb_index_queries_total.

// PromContentType is the content type a /debug/prom handler must send.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every metric in the registry in Prometheus
// text exposition format. Nil-safe: a nil registry writes nothing.
func WritePrometheus(w io.Writer, r *Registry) {
	if r == nil {
		return
	}
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	prefix := "dualcdb_" + promName(r.Name()) + "_"
	for _, name := range names {
		pn := prefix + promName(name)
		switch v := snap[name].(type) {
		case uint64:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, v)
		case int64:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, v)
		case HistogramSnapshot:
			writePromHistogram(w, pn, v)
		default:
			// Func gauge: flatten whatever it returned into numeric
			// leaves; non-numeric results are silently skipped.
			flattenNumeric(pn, reflect.ValueOf(snap[name]), func(leaf string, val float64) {
				fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", leaf, leaf, promFloat(val))
			})
		}
	}
}

// writePromHistogram converts a log2 HistogramSnapshot into the
// cumulative le-bucket series Prometheus expects. Buckets arrive in
// ascending value order, so the emitted le bounds are monotone; the
// terminal +Inf bucket always carries the total count.
func writePromHistogram(w io.Writer, name string, h HistogramSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.Hi, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// flattenNumeric walks v and emits every numeric leaf: scalars emit
// under name itself, struct fields under name_snake_case (recursively).
func flattenNumeric(name string, v reflect.Value, emit func(string, float64)) {
	for v.Kind() == reflect.Pointer || v.Kind() == reflect.Interface {
		if v.IsNil() {
			return
		}
		v = v.Elem()
	}
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		emit(name, float64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		emit(name, float64(v.Uint()))
	case reflect.Float32, reflect.Float64:
		emit(name, v.Float())
	case reflect.Bool:
		b := 0.0
		if v.Bool() {
			b = 1
		}
		emit(name, b)
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			flattenNumeric(name+"_"+snakeCase(f.Name), v.Field(i), emit)
		}
	}
}

// snakeCase converts an exported Go field name to prometheus_style:
// DeferredPages -> deferred_pages, ReclaimFailures -> reclaim_failures.
// Runs of capitals stay together (IDs -> ids).
func snakeCase(s string) string {
	out := make([]byte, 0, len(s)+4)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			if i > 0 && !(s[i-1] >= 'A' && s[i-1] <= 'Z') {
				out = append(out, '_')
			}
			c += 'a' - 'A'
		}
		out = append(out, c)
	}
	return string(out)
}

// promName maps an internal metric name onto the Prometheus charset:
// every byte outside [a-zA-Z0-9_:] becomes '_'.
func promName(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// promFloat renders a float sample value ("+Inf"/"-Inf"/"NaN" per the
// exposition format).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// runtimeSamples is the fixed runtime/metrics bridge: enough to spot a
// heap blowup, GC pressure, or a goroutine leak next to the engine's
// own gauges, without exporting the runtime's full catalog.
var runtimeSamples = []struct {
	src  string // runtime/metrics name
	name string // exported name
	typ  string // counter | gauge | histogram
}{
	{"/sched/goroutines:goroutines", "go_goroutines", "gauge"},
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes", "gauge"},
	{"/memory/classes/total:bytes", "go_memory_total_bytes", "gauge"},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total", "counter"},
	{"/gc/pauses:seconds", "go_gc_pauses_seconds", "histogram"},
}

// WriteRuntimeMetrics appends the Go runtime bridge (heap and total
// memory, goroutine count, GC cycles and pause distribution) in
// exposition format. Metrics the running toolchain does not export are
// skipped.
func WriteRuntimeMetrics(w io.Writer) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i := range runtimeSamples {
		samples[i].Name = runtimeSamples[i].src
	}
	metrics.Read(samples)
	for i, d := range runtimeSamples {
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", d.name, d.typ, d.name, samples[i].Value.Uint64())
		case metrics.KindFloat64:
			fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", d.name, d.typ, d.name, promFloat(samples[i].Value.Float64()))
		case metrics.KindFloat64Histogram:
			writePromFloat64Histogram(w, d.name, samples[i].Value.Float64Histogram())
		}
	}
}

// writePromFloat64Histogram converts a runtime/metrics histogram
// (bucket i counts observations in (Buckets[i], Buckets[i+1]]) into
// cumulative le series. The runtime does not track an exact sum, so
// _sum approximates each bucket by its finite boundary.
func writePromFloat64Histogram(w io.Writer, name string, h *metrics.Float64Histogram) {
	if h == nil || len(h.Buckets) != len(h.Counts)+1 {
		return
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	var sum float64
	for i, c := range h.Counts {
		cum += c
		upper := h.Buckets[i+1]
		approx := upper
		if math.IsInf(approx, 1) {
			approx = h.Buckets[i]
		}
		sum += float64(c) * approx
		if c == 0 && i != len(h.Counts)-1 {
			continue
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, promFloat(upper), cum)
	}
	if len(h.Counts) == 0 || !math.IsInf(h.Buckets[len(h.Buckets)-1], 1) {
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	}
	fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(sum), name, cum)
}
