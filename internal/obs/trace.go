package obs

import (
	"sync"
	"time"
)

// Stage labels one phase of dual-index query execution. The taxonomy
// mirrors the paper's cost decomposition: route picks the slope a_i
// (and plans T1's two approximating queries), sweep is the first
// B^up/B^down leaf walk, sweep2 is T2's handicap-bounded second walk,
// dedup is T1's duplicate elimination across the two app-queries, and
// refine is the exact-predicate pass that removes false hits.
type Stage uint8

// The stage-span taxonomy. NumStages bounds per-stage metric arrays.
const (
	StageRoute Stage = iota
	StageSweep
	StageSweepSecond
	StageDedup
	StageRefine
	NumStages
)

var stageNames = [NumStages]string{"route", "sweep", "sweep2", "dedup", "refine"}

// String returns the short stage name used in metrics and trace dumps.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Span is one recorded stage interval within a query trace. Start is
// the offset from the trace's begin time; Pages is the physical page
// reads attributed to the span (a ReadCounter delta); Items is the
// stage-specific payload size — entries swept, candidates refined,
// duplicates dropped.
type Span struct {
	Stage Stage
	Start time.Duration
	Dur   time.Duration
	Pages uint64
	Items int
}

// QueryTrace accumulates the stage spans of one query execution. The
// engine appends spans through SpanTimer; T1's parallel sweeps append
// concurrently, hence the mutex. A nil *QueryTrace is valid everywhere
// and records nothing, which is how the zero-overhead bare path works.
type QueryTrace struct {
	query string
	begun time.Time

	mu    sync.Mutex
	spans []Span //dualvet:guarded=mu

	// Filled by Observer.FinishQuery.
	done        bool
	path        string
	total       time.Duration
	pages       uint64
	candidates  int
	results     int
	falseHits   int
	duplicates  int
	leavesSwept int
	err         string
}

func newTrace(query string) *QueryTrace {
	return &QueryTrace{query: query, begun: time.Now(), spans: make([]Span, 0, 8)}
}

// Begin opens a stage span; pages0 is the caller's current physical
// read count (the span records the delta at End). Safe on a nil trace:
// the returned zero timer's End is a no-op.
func (t *QueryTrace) Begin(stage Stage, pages0 uint64) SpanTimer {
	if t == nil {
		return SpanTimer{}
	}
	return SpanTimer{tr: t, stage: stage, start: time.Now(), pages0: pages0}
}

// SpanTimer measures one stage span. It is a plain value — obtaining
// one allocates nothing — and the zero value's End is a no-op, so call
// sites need no nil checks beyond the one in QueryTrace.Begin.
type SpanTimer struct {
	tr     *QueryTrace
	stage  Stage
	start  time.Time
	pages0 uint64
}

// End closes the span: pages1 is the caller's physical read count now
// (Pages = pages1 - pages0), items the stage payload size.
func (s SpanTimer) End(pages1 uint64, items int) {
	if s.tr == nil {
		return
	}
	sp := Span{
		Stage: s.stage,
		Start: s.start.Sub(s.tr.begun),
		Dur:   time.Since(s.start),
		Pages: pages1 - s.pages0,
		Items: items,
	}
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, sp)
	s.tr.mu.Unlock()
}

// finish stamps the query-level outcome onto the trace.
func (t *QueryTrace) finish(total time.Duration, info QueryInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done = true
	t.path = info.Path
	t.total = total
	t.pages = info.PagesRead
	t.candidates = info.Candidates
	t.results = info.Results
	t.falseHits = info.FalseHits
	t.duplicates = info.Duplicates
	t.leavesSwept = info.LeavesSwept
	if info.Err != nil {
		t.err = info.Err.Error()
	}
}

// SpanSnapshot is the JSON form of one span in a trace dump.
type SpanSnapshot struct {
	Stage   string `json:"stage"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
	Pages   uint64 `json:"pages"`
	Items   int    `json:"items"`
}

// TraceSnapshot is the JSON form of a finished query trace, served at
// /debug/traces and attached to slow-query log records.
type TraceSnapshot struct {
	Query       string         `json:"query"`
	Path        string         `json:"path"`
	Start       time.Time      `json:"start"`
	TotalUs     int64          `json:"total_us"`
	Pages       uint64         `json:"pages"`
	Candidates  int            `json:"candidates"`
	Results     int            `json:"results"`
	FalseHits   int            `json:"false_hits"`
	Duplicates  int            `json:"duplicates"`
	LeavesSwept int            `json:"leaves_swept"`
	Err         string         `json:"err,omitempty"`
	Spans       []SpanSnapshot `json:"spans"`
}

// Snapshot renders the trace for serialization.
func (t *QueryTrace) Snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := TraceSnapshot{
		Query:       t.query,
		Path:        t.path,
		Start:       t.begun,
		TotalUs:     t.total.Microseconds(),
		Pages:       t.pages,
		Candidates:  t.candidates,
		Results:     t.results,
		FalseHits:   t.falseHits,
		Duplicates:  t.duplicates,
		LeavesSwept: t.leavesSwept,
		Err:         t.err,
		Spans:       make([]SpanSnapshot, 0, len(t.spans)),
	}
	for _, sp := range t.spans {
		ts.Spans = append(ts.Spans, SpanSnapshot{
			Stage:   sp.Stage.String(),
			StartUs: sp.Start.Microseconds(),
			DurUs:   sp.Dur.Microseconds(),
			Pages:   sp.Pages,
			Items:   sp.Items,
		})
	}
	return ts
}

// spansCopy returns the recorded spans; used by FinishQuery to fold
// them into per-stage metrics.
func (t *QueryTrace) spansCopy() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}
