package obs

import (
	"context"
	"log/slog"
	"sort"
	"sync"
	"time"
)

// QueryInfo is what the execution engine reports when a query
// finishes. The counts mirror core.QueryStats exactly so the
// reconciliation test can compare observer totals against the exact
// per-query counters.
type QueryInfo struct {
	Path        string // technique route taken: "restricted", "t1", "t2", ...
	PagesRead   uint64
	Candidates  int
	Results     int
	FalseHits   int
	Duplicates  int
	LeavesSwept int
	Err         error
}

// Options configures an Observer.
type Options struct {
	// Name labels the registry (default "index").
	Name string
	// SlowThreshold routes queries and commits at or above this latency
	// to the slow logs and slow-trace rings. Zero disables both (aborted
	// commits are still retained and logged regardless).
	SlowThreshold time.Duration
	// Logger receives structured slow-query and slow-commit records
	// (nil: traces are still retained in the rings but nothing is
	// logged).
	Logger *slog.Logger
	// TraceCapacity bounds the slow-query and slow-commit rings
	// (default 32).
	TraceCapacity int
	// FlightCapacity bounds the commit flight recorder — the ring that
	// keeps every recent commit trace, slow or not (default 64).
	FlightCapacity int
}

// Observer aggregates query-level observations for one index: global
// and per-path counters, latency histograms, per-stage span metrics, a
// slow-query trace ring, and an optional slog slow-query log. All
// methods are safe for concurrent use; a nil *Observer is valid
// everywhere and does nothing.
type Observer struct {
	name          string
	reg           *Registry
	slowThreshold time.Duration
	logger        *slog.Logger
	created       time.Time

	queries  *Counter
	slow     *Counter
	errors   *Counter
	inflight *Gauge
	batches  *Counter
	batchNs  *Histogram

	stages [NumStages]stageMetrics

	// Write-path aggregates (commit.go): commit counters, per-stage
	// commit metrics, the COW clone fan-out and snapshot-age
	// histograms, the flight recorder and the slow-commit ring.
	commits        *Counter
	commitAborts   *Counter
	abortFault     *Counter
	abortExplicit  *Counter
	slowCommits    *Counter
	commitInflight *Gauge
	commitNs       *Histogram
	cloneFanout    *Histogram
	supersededPg   *Histogram
	snapAgeNs      *Histogram
	cstages        [NumCommitStages]commitStageMetrics
	flight         commitRing
	slowCommitRing commitRing

	mu    sync.RWMutex
	paths map[string]*pathMetrics //dualvet:guarded=mu

	ring struct {
		sync.Mutex
		buf  []*QueryTrace //dualvet:guarded=Mutex
		next int           //dualvet:guarded=Mutex
		seen int           //dualvet:guarded=Mutex
	}
}

type stageMetrics struct {
	ns    *Histogram
	pages *Counter
	items *Counter
}

type pathMetrics struct {
	count       *Counter
	ns          *Histogram
	pages       *Counter
	candidates  *Counter
	results     *Counter
	falseHits   *Counter
	duplicates  *Counter
	leavesSwept *Counter
}

// New builds an Observer. The zero Options is usable: metrics and
// traces accumulate, nothing is logged.
func New(opt Options) *Observer {
	if opt.Name == "" {
		opt.Name = "index"
	}
	if opt.TraceCapacity <= 0 {
		opt.TraceCapacity = 32
	}
	if opt.FlightCapacity <= 0 {
		opt.FlightCapacity = 64
	}
	o := &Observer{
		name:          opt.Name,
		reg:           NewRegistry(opt.Name),
		slowThreshold: opt.SlowThreshold,
		logger:        opt.Logger,
		created:       time.Now(),
		paths:         make(map[string]*pathMetrics),
	}
	o.queries = o.reg.Counter("queries.total")
	o.slow = o.reg.Counter("queries.slow")
	o.errors = o.reg.Counter("queries.errors")
	o.inflight = o.reg.Gauge("queries.inflight")
	o.batches = o.reg.Counter("batches.total")
	o.batchNs = o.reg.Histogram("batches.latency_ns")
	for s := Stage(0); s < NumStages; s++ {
		o.stages[s] = stageMetrics{
			ns:    o.reg.Histogram("stage." + s.String() + ".ns"),
			pages: o.reg.Counter("stage." + s.String() + ".pages"),
			items: o.reg.Counter("stage." + s.String() + ".items"),
		}
	}
	o.commits = o.reg.Counter("commits.total")
	o.commitAborts = o.reg.Counter("commits.aborted")
	o.abortFault = o.reg.Counter("commits.aborted.fault")
	o.abortExplicit = o.reg.Counter("commits.aborted.explicit")
	o.slowCommits = o.reg.Counter("commits.slow")
	o.commitInflight = o.reg.Gauge("commits.inflight")
	o.commitNs = o.reg.Histogram("commits.latency_ns")
	o.cloneFanout = o.reg.Histogram("commits.clone_fanout")
	o.supersededPg = o.reg.Histogram("commits.superseded_pages")
	o.snapAgeNs = o.reg.Histogram("mvcc.snapshot_age_ns")
	for s := CommitStage(0); s < NumCommitStages; s++ {
		o.cstages[s] = commitStageMetrics{
			ns:     o.reg.Histogram("cstage." + s.String() + ".ns"),
			cloned: o.reg.Counter("cstage." + s.String() + ".cloned"),
			freed:  o.reg.Counter("cstage." + s.String() + ".freed"),
			items:  o.reg.Counter("cstage." + s.String() + ".items"),
		}
	}
	o.flight.buf = make([]*CommitTrace, opt.FlightCapacity)
	o.slowCommitRing.buf = make([]*CommitTrace, opt.TraceCapacity)
	o.ring.buf = make([]*QueryTrace, opt.TraceCapacity)
	return o
}

// Registry returns the observer's metric registry, for attaching
// additional gauges (pool residency, cache occupancy).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// StartQuery opens a trace for one query execution. query is a
// human-readable description (constraint.Query.String()). Pair with
// FinishQuery.
func (o *Observer) StartQuery(query string) *QueryTrace {
	if o == nil {
		return nil
	}
	o.inflight.Add(1)
	return newTrace(query)
}

// FinishQuery closes a trace opened by StartQuery, folding the
// query-level counts and every recorded stage span into the metric
// registry, and retaining the trace in the slow ring when the total
// latency crosses the threshold.
func (o *Observer) FinishQuery(tr *QueryTrace, info QueryInfo) {
	if o == nil || tr == nil {
		return
	}
	o.inflight.Add(-1)
	total := time.Since(tr.begun)
	tr.finish(total, info)

	o.queries.Inc()
	if info.Err != nil {
		o.errors.Inc()
	}
	pm := o.path(info.Path)
	pm.count.Inc()
	pm.ns.RecordDuration(total)
	pm.pages.Add(info.PagesRead)
	pm.candidates.Add(uint64(info.Candidates))
	pm.results.Add(uint64(info.Results))
	pm.falseHits.Add(uint64(info.FalseHits))
	pm.duplicates.Add(uint64(info.Duplicates))
	pm.leavesSwept.Add(uint64(info.LeavesSwept))

	for _, sp := range tr.spansCopy() {
		st := &o.stages[sp.Stage]
		st.ns.RecordDuration(sp.Dur)
		st.pages.Add(sp.Pages)
		if sp.Items > 0 {
			st.items.Add(uint64(sp.Items))
		}
	}

	if o.slowThreshold > 0 && total >= o.slowThreshold {
		o.slow.Inc()
		o.ringAdd(tr)
		if o.logger != nil {
			o.logSlow(tr, total, info)
		}
	}
}

func (o *Observer) path(name string) *pathMetrics {
	if name == "" {
		name = "unknown"
	}
	o.mu.RLock()
	pm := o.paths[name]
	o.mu.RUnlock()
	if pm != nil {
		return pm
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if pm := o.paths[name]; pm != nil {
		return pm
	}
	pm = &pathMetrics{
		count:       o.reg.Counter("path." + name + ".count"),
		ns:          o.reg.Histogram("path." + name + ".ns"),
		pages:       o.reg.Counter("path." + name + ".pages"),
		candidates:  o.reg.Counter("path." + name + ".candidates"),
		results:     o.reg.Counter("path." + name + ".results"),
		falseHits:   o.reg.Counter("path." + name + ".false_hits"),
		duplicates:  o.reg.Counter("path." + name + ".duplicates"),
		leavesSwept: o.reg.Counter("path." + name + ".leaves_swept"),
	}
	o.paths[name] = pm
	return pm
}

func (o *Observer) ringAdd(tr *QueryTrace) {
	o.ring.Lock()
	o.ring.buf[o.ring.next] = tr
	o.ring.next = (o.ring.next + 1) % len(o.ring.buf)
	o.ring.seen++
	o.ring.Unlock()
}

// logSlow emits one structured record per slow query, with the stage
// breakdown as a nested group so log processors can aggregate per
// stage without parsing the trace dump.
func (o *Observer) logSlow(tr *QueryTrace, total time.Duration, info QueryInfo) {
	attrs := []slog.Attr{
		slog.String("index", o.name),
		slog.String("query", tr.query),
		slog.String("path", info.Path),
		slog.Duration("total", total),
		slog.Uint64("pages_read", info.PagesRead),
		slog.Int("candidates", info.Candidates),
		slog.Int("results", info.Results),
		slog.Int("false_hits", info.FalseHits),
		slog.Int("duplicates", info.Duplicates),
		slog.Int("leaves_swept", info.LeavesSwept),
	}
	var stageAttrs []any
	for _, sp := range tr.spansCopy() {
		stageAttrs = append(stageAttrs, slog.Group(sp.Stage.String(),
			slog.Duration("dur", sp.Dur),
			slog.Uint64("pages", sp.Pages),
			slog.Int("items", sp.Items),
		))
	}
	if len(stageAttrs) > 0 {
		attrs = append(attrs, slog.Group("stages", stageAttrs...))
	}
	if info.Err != nil {
		attrs = append(attrs, slog.String("err", info.Err.Error()))
	}
	o.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow query", attrs...)
}

// BatchTimer measures one QueryBatch run. The zero value's Done is a
// no-op.
type BatchTimer struct {
	o     *Observer
	start time.Time
}

// StartBatch opens a batch timer; pair with Done.
func (o *Observer) StartBatch() BatchTimer {
	if o == nil {
		return BatchTimer{}
	}
	return BatchTimer{o: o, start: time.Now()}
}

// Done records the batch's wall time.
func (b BatchTimer) Done() {
	if b.o == nil {
		return
	}
	b.o.batches.Inc()
	b.o.batchNs.RecordDuration(time.Since(b.start))
}

// SlowTraces returns the retained slow-query traces, newest first.
func (o *Observer) SlowTraces() []TraceSnapshot {
	if o == nil {
		return nil
	}
	o.ring.Lock()
	n := len(o.ring.buf)
	trs := make([]*QueryTrace, 0, n)
	for i := 1; i <= n; i++ {
		if tr := o.ring.buf[(o.ring.next-i+n)%n]; tr != nil {
			trs = append(trs, tr)
		}
	}
	o.ring.Unlock()
	out := make([]TraceSnapshot, 0, len(trs))
	for _, tr := range trs {
		out = append(out, tr.Snapshot())
	}
	return out
}

// StageSnapshot aggregates one execution stage across all observed
// queries.
type StageSnapshot struct {
	Count   uint64            `json:"count"`
	Pages   uint64            `json:"pages"`
	Items   uint64            `json:"items"`
	Latency HistogramSnapshot `json:"latency"`
}

// PathSnapshot aggregates one technique route across all observed
// queries.
type PathSnapshot struct {
	Count       uint64            `json:"count"`
	Pages       uint64            `json:"pages"`
	Candidates  uint64            `json:"candidates"`
	Results     uint64            `json:"results"`
	FalseHits   uint64            `json:"false_hits"`
	Duplicates  uint64            `json:"duplicates"`
	LeavesSwept uint64            `json:"leaves_swept"`
	Latency     HistogramSnapshot `json:"latency"`
}

// Snapshot is a point-in-time read of everything the observer has
// accumulated.
type Snapshot struct {
	Name         string                   `json:"name"`
	UptimeSec    float64                  `json:"uptime_sec"`
	Queries      uint64                   `json:"queries"`
	Slow         uint64                   `json:"slow"`
	Errors       uint64                   `json:"errors"`
	Inflight     int64                    `json:"inflight"`
	Batches      uint64                   `json:"batches"`
	BatchLatency HistogramSnapshot        `json:"batch_latency"`
	Totals       PathSnapshot             `json:"totals"`
	Paths        map[string]PathSnapshot  `json:"paths"`
	Stages       map[string]StageSnapshot `json:"stages"`
	PathNames    []string                 `json:"-"`

	// Write-path aggregates. AbortsFault/AbortsExplicit split
	// CommitAborts by cause; CommitStages is keyed by stage name
	// (stage/shadow/publish/reclaim).
	Commits        uint64                         `json:"commits"`
	CommitAborts   uint64                         `json:"commit_aborts"`
	AbortsFault    uint64                         `json:"aborts_fault"`
	AbortsExplicit uint64                         `json:"aborts_explicit"`
	CommitsSlow    uint64                         `json:"commits_slow"`
	CommitInflight int64                          `json:"commits_inflight"`
	CommitLatency  HistogramSnapshot              `json:"commit_latency"`
	CloneFanout    HistogramSnapshot              `json:"clone_fanout"`
	SnapshotAge    HistogramSnapshot              `json:"snapshot_age"`
	CommitStages   map[string]CommitStageSnapshot `json:"commit_stages"`
}

// ObserverSnapshot reads the observer. Nil-safe: returns nil.
func (o *Observer) ObserverSnapshot() *Snapshot {
	if o == nil {
		return nil
	}
	s := &Snapshot{
		Name:           o.name,
		UptimeSec:      time.Since(o.created).Seconds(),
		Queries:        o.queries.Load(),
		Slow:           o.slow.Load(),
		Errors:         o.errors.Load(),
		Inflight:       o.inflight.Load(),
		Batches:        o.batches.Load(),
		BatchLatency:   o.batchNs.Snapshot(),
		Paths:          make(map[string]PathSnapshot),
		Stages:         make(map[string]StageSnapshot),
		Commits:        o.commits.Load(),
		CommitAborts:   o.commitAborts.Load(),
		AbortsFault:    o.abortFault.Load(),
		AbortsExplicit: o.abortExplicit.Load(),
		CommitsSlow:    o.slowCommits.Load(),
		CommitInflight: o.commitInflight.Load(),
		CommitLatency:  o.commitNs.Snapshot(),
		CloneFanout:    o.cloneFanout.Snapshot(),
		SnapshotAge:    o.snapAgeNs.Snapshot(),
		CommitStages:   make(map[string]CommitStageSnapshot),
	}
	o.mu.RLock()
	paths := make(map[string]*pathMetrics, len(o.paths))
	for k, v := range o.paths {
		paths[k] = v
	}
	o.mu.RUnlock()
	for name, pm := range paths {
		ps := PathSnapshot{
			Count:       pm.count.Load(),
			Pages:       pm.pages.Load(),
			Candidates:  pm.candidates.Load(),
			Results:     pm.results.Load(),
			FalseHits:   pm.falseHits.Load(),
			Duplicates:  pm.duplicates.Load(),
			LeavesSwept: pm.leavesSwept.Load(),
			Latency:     pm.ns.Snapshot(),
		}
		s.Paths[name] = ps
		s.Totals.Count += ps.Count
		s.Totals.Pages += ps.Pages
		s.Totals.Candidates += ps.Candidates
		s.Totals.Results += ps.Results
		s.Totals.FalseHits += ps.FalseHits
		s.Totals.Duplicates += ps.Duplicates
		s.Totals.LeavesSwept += ps.LeavesSwept
		s.PathNames = append(s.PathNames, name)
	}
	sort.Strings(s.PathNames)
	for st := Stage(0); st < NumStages; st++ {
		m := &o.stages[st]
		lat := m.ns.Snapshot()
		if lat.Count == 0 && m.pages.Load() == 0 {
			continue
		}
		s.Stages[st.String()] = StageSnapshot{
			Count:   lat.Count,
			Pages:   m.pages.Load(),
			Items:   m.items.Load(),
			Latency: lat,
		}
	}
	for st := CommitStage(0); st < NumCommitStages; st++ {
		m := &o.cstages[st]
		lat := m.ns.Snapshot()
		if lat.Count == 0 {
			continue
		}
		s.CommitStages[st.String()] = CommitStageSnapshot{
			Count:   lat.Count,
			Cloned:  m.cloned.Load(),
			Freed:   m.freed.Load(),
			Items:   m.items.Load(),
			Latency: lat,
		}
	}
	return s
}
