package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (in-flight queries, resident
// frames). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
