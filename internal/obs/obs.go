// Package obs is the unified observability layer: atomic counters and
// gauges, lock-free log2-bucketed latency histograms, named per-index
// registries, and a per-query trace that attributes latency and page
// I/O to execution stages (slope routing, envelope sweeps, refinement).
//
// The package is stdlib-only and designed around one invariant: when no
// Observer is attached (core's Options.Observe is nil) the query path
// must not pay for it — no allocations, no atomic traffic, no branches
// beyond a nil check. Every hook type (SpanTimer, BatchTimer) is a
// value struct whose methods are no-ops on the zero value, so call
// sites read straight-line and the bare path stays bare. The guard is
// enforced by BenchmarkQueryBare/BenchmarkQueryObserved and an
// allocs-per-run test in core.
package obs

import (
	"sort"
	"sync"
)

// Registry is a named, concurrency-safe collection of metrics. Metrics
// are created on first use and live for the registry's lifetime;
// lookups after creation are read-locked only, and the hot-path
// operations on the metrics themselves (Inc, Record) never touch the
// registry again.
type Registry struct {
	name string

	mu    sync.RWMutex
	items map[string]any
}

// NewRegistry creates an empty registry. The name labels snapshots so
// several indexes can expose metrics side by side.
func NewRegistry(name string) *Registry {
	return &Registry{name: name, items: make(map[string]any)}
}

// Name returns the registry's label.
func (r *Registry) Name() string { return r.name }

// getOrCreate returns the metric registered under name, creating it
// with mk on first use. Callers assert the concrete type; registering
// the same name with two different metric kinds is a programming error
// and panics at the caller's type assertion.
func (r *Registry) getOrCreate(name string, mk func() any) any {
	r.mu.RLock()
	v := r.items[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v := r.items[name]; v != nil {
		return v
	}
	v = mk()
	r.items[name] = v
	return v
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	return r.getOrCreate(name, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	return r.getOrCreate(name, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the histogram registered under name, creating it
// on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.getOrCreate(name, func() any { return new(Histogram) }).(*Histogram)
}

// Func registers a callback evaluated at snapshot time — the bridge
// for gauges whose truth lives elsewhere (pool residency, cache
// occupancy) and would be wasteful to mirror on every mutation.
func (r *Registry) Func(name string, f func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.items[name] = funcMetric(f)
}

type funcMetric func() any

// Snapshot returns every metric's current value keyed by name:
// counters as uint64, gauges as int64, histograms as
// HistogramSnapshot, funcs as whatever they return. Func callbacks run
// outside the registry lock so they may create metrics or snapshot
// other registries without deadlocking.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	items := make(map[string]any, len(r.items))
	for k, v := range r.items {
		items[k] = v
	}
	r.mu.RUnlock()

	out := make(map[string]any, len(items))
	for name, v := range items {
		switch m := v.(type) {
		case *Counter:
			out[name] = m.Load()
		case *Gauge:
			out[name] = m.Load()
		case *Histogram:
			out[name] = m.Snapshot()
		case funcMetric:
			out[name] = m()
		}
	}
	return out
}

// Names returns the registered metric names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.items))
	for k := range r.items {
		names = append(names, k)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}
