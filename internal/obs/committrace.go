package obs

import (
	"sync"
	"time"
)

// CommitStage labels one phase of a commit batch, mirroring the write
// path's structure: stage is the mutation window from Index.Begin to the
// Commit call, where every copy-on-write page clone happens; shadow
// closes the trees' COW batches and collects the superseded originals;
// publish derives the frozen relation view and swaps the new root set
// in; reclaim hands the superseded pages to the pool's deferred-free
// queue and frees whatever the snapshot watermark already allows.
type CommitStage uint8

// The commit-stage taxonomy. NumCommitStages bounds per-stage metric
// arrays.
const (
	CommitStageStage CommitStage = iota
	CommitStageShadow
	CommitStagePublish
	CommitStageReclaim
	NumCommitStages
)

var commitStageNames = [NumCommitStages]string{"stage", "shadow", "publish", "reclaim"}

// String returns the short stage name used in metrics and trace dumps.
func (s CommitStage) String() string {
	if s < NumCommitStages {
		return commitStageNames[s]
	}
	return "unknown"
}

// AbortCause distinguishes why a commit batch was abandoned: a mutation
// fault mid-batch (the engine aborted to keep the published version
// intact) versus the caller explicitly calling Abort.
type AbortCause string

// The abort causes recorded on aborted commit traces.
const (
	AbortFault    AbortCause = "fault"
	AbortExplicit AbortCause = "explicit"
)

// CommitSpan is one recorded stage interval within a commit trace.
// Start is the offset from the trace's begin time; Cloned and Freed are
// the pool's ClonePage and watermark-reclamation counter deltas across
// the span — exact attribution, because clones only happen under the
// index's single-writer lock; Items is the stage payload (mutations
// staged, superseded pages collected, tuples published, pages freed
// now).
type CommitSpan struct {
	Stage  CommitStage
	Start  time.Duration
	Dur    time.Duration
	Cloned uint64
	Freed  uint64
	Items  int
}

// CommitInfo is what the write path reports when a commit batch
// finishes (published or aborted). The counts mirror the commit's exact
// bookkeeping so the write-side reconciliation test can compare
// observer totals against the pool's counters.
type CommitInfo struct {
	Op         string // "insert", "delete", "rebuild", or "batch"
	Version    uint64 // published version (0 when aborted)
	Inserts    int
	Deletes    int
	Superseded int // pages handed to DeferFrees
	Aborted    bool
	Cause      AbortCause // set when Aborted
	Err        error      // the mutation fault, when Cause is AbortFault
}

// CommitTrace accumulates the stage spans of one commit batch. Spans
// are appended by the single writer holding the commit lock, but the
// flight recorder snapshots retained traces concurrently, hence the
// mutex. A nil *CommitTrace is valid everywhere and records nothing,
// which is how the zero-overhead bare write path works.
type CommitTrace struct {
	begun time.Time

	mu    sync.Mutex
	spans []CommitSpan

	// Filled by Observer.FinishCommit.
	done       bool
	op         string
	total      time.Duration
	version    uint64
	inserts    int
	deletes    int
	superseded int
	aborted    bool
	cause      AbortCause
	err        string
}

func newCommitTrace() *CommitTrace {
	return &CommitTrace{begun: time.Now(), spans: make([]CommitSpan, 0, int(NumCommitStages))}
}

// Begin opens a commit-stage span; clones0/freed0 are the pool's current
// clone and reclamation counts (the span records the deltas at End).
// Safe on a nil trace: the returned zero timer's End is a no-op.
func (t *CommitTrace) Begin(stage CommitStage, clones0, freed0 uint64) CommitSpanTimer {
	if t == nil {
		return CommitSpanTimer{}
	}
	return CommitSpanTimer{tr: t, stage: stage, start: time.Now(), clones0: clones0, freed0: freed0}
}

// CommitSpanTimer measures one commit-stage span. It is a plain value —
// obtaining one allocates nothing — and the zero value's End is a
// no-op, so call sites need no nil checks beyond the one in
// CommitTrace.Begin.
type CommitSpanTimer struct {
	tr      *CommitTrace
	stage   CommitStage
	start   time.Time
	clones0 uint64
	freed0  uint64
}

// End closes the span: clones1/freed1 are the pool's counts now
// (Cloned = clones1 - clones0, Freed = freed1 - freed0), items the
// stage payload size.
func (s CommitSpanTimer) End(clones1, freed1 uint64, items int) {
	if s.tr == nil {
		return
	}
	sp := CommitSpan{
		Stage:  s.stage,
		Start:  s.start.Sub(s.tr.begun),
		Dur:    time.Since(s.start),
		Cloned: clones1 - s.clones0,
		Freed:  freed1 - s.freed0,
		Items:  items,
	}
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, sp)
	s.tr.mu.Unlock()
}

// finish stamps the commit-level outcome onto the trace.
func (t *CommitTrace) finish(total time.Duration, info CommitInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done = true
	t.op = info.Op
	t.total = total
	t.version = info.Version
	t.inserts = info.Inserts
	t.deletes = info.Deletes
	t.superseded = info.Superseded
	t.aborted = info.Aborted
	t.cause = info.Cause
	if info.Err != nil {
		t.err = info.Err.Error()
	}
}

// CommitSpanSnapshot is the JSON form of one commit-stage span.
type CommitSpanSnapshot struct {
	Stage   string `json:"stage"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
	Cloned  uint64 `json:"cloned"`
	Freed   uint64 `json:"freed"`
	Items   int    `json:"items"`
}

// CommitTraceSnapshot is the JSON form of a finished commit trace,
// served at /debug/flight and attached to slow-commit log records.
type CommitTraceSnapshot struct {
	Op         string               `json:"op"`
	Version    uint64               `json:"version,omitempty"`
	Start      time.Time            `json:"start"`
	TotalUs    int64                `json:"total_us"`
	Inserts    int                  `json:"inserts"`
	Deletes    int                  `json:"deletes"`
	Superseded int                  `json:"superseded"`
	Cloned     uint64               `json:"cloned"`
	Freed      uint64               `json:"freed"`
	Aborted    bool                 `json:"aborted,omitempty"`
	Cause      string               `json:"cause,omitempty"`
	Err        string               `json:"err,omitempty"`
	Spans      []CommitSpanSnapshot `json:"spans"`
}

// Snapshot renders the trace for serialization. Cloned and Freed are
// the span sums — the commit's whole-batch attribution.
func (t *CommitTrace) Snapshot() CommitTraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := CommitTraceSnapshot{
		Op:         t.op,
		Version:    t.version,
		Start:      t.begun,
		TotalUs:    t.total.Microseconds(),
		Inserts:    t.inserts,
		Deletes:    t.deletes,
		Superseded: t.superseded,
		Aborted:    t.aborted,
		Cause:      string(t.cause),
		Err:        t.err,
		Spans:      make([]CommitSpanSnapshot, 0, len(t.spans)),
	}
	for _, sp := range t.spans {
		ts.Cloned += sp.Cloned
		ts.Freed += sp.Freed
		ts.Spans = append(ts.Spans, CommitSpanSnapshot{
			Stage:   sp.Stage.String(),
			StartUs: sp.Start.Microseconds(),
			DurUs:   sp.Dur.Microseconds(),
			Cloned:  sp.Cloned,
			Freed:   sp.Freed,
			Items:   sp.Items,
		})
	}
	return ts
}

// spansCopy returns the recorded spans; used by FinishCommit to fold
// them into per-stage metrics.
func (t *CommitTrace) spansCopy() []CommitSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]CommitSpan, len(t.spans))
	copy(out, t.spans)
	return out
}
