package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// DebugMux builds the HTTP debug surface:
//
//	/debug/stats    expvar-style JSON of the unified stats snapshot
//	/debug/metrics  flat name->value dump of the observer's registry
//	/debug/traces   the last N slow-query traces, newest first
//	/debug/prom     Prometheus text exposition (registry + runtime bridge)
//	/debug/flight   the commit flight recorder + slow-commit ring
//	/debug/pprof/*  the standard runtime profiles
//
// stats is evaluated per request (typically Index.StatsSnapshot); o
// may be nil, in which case the observer-backed endpoints serve empty
// documents. The mux is safe to serve while queries and commits run.
func DebugMux(stats func() any, o *Observer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/stats", func(w http.ResponseWriter, r *http.Request) {
		if stats == nil {
			http.Error(w, "no stats source", http.StatusNotFound)
			return
		}
		writeJSON(w, stats())
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg := o.Registry()
		if reg == nil {
			writeJSON(w, map[string]any{})
			return
		}
		writeJSON(w, reg.Snapshot())
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		trs := o.SlowTraces()
		if trs == nil {
			trs = []TraceSnapshot{}
		}
		writeJSON(w, trs)
	})
	mux.HandleFunc("/debug/prom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		WritePrometheus(w, o.Registry())
		WriteRuntimeMetrics(w)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, FlightDump{
			Commits:     nonNilCommits(o.FlightRecords()),
			SlowCommits: nonNilCommits(o.SlowCommits()),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "dualcdb debug server")
		for _, p := range []string{"/debug/stats", "/debug/metrics", "/debug/traces", "/debug/prom", "/debug/flight", "/debug/pprof/"} {
			fmt.Fprintln(w, " ", p)
		}
	})
	return mux
}

// FlightDump is the /debug/flight document: every recent commit trace
// (newest first) plus the slow-or-aborted subset the slow-commit ring
// retains.
type FlightDump struct {
	Commits     []CommitTraceSnapshot `json:"commits"`
	SlowCommits []CommitTraceSnapshot `json:"slow_commits"`
}

func nonNilCommits(trs []CommitTraceSnapshot) []CommitTraceSnapshot {
	if trs == nil {
		return []CommitTraceSnapshot{}
	}
	return trs
}

// writeJSON serializes v with stable key order (maps are sorted by
// encoding/json) and an indent so the endpoints are curl-friendly.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(append(data, '\n')); err != nil {
		// Client went away mid-response; nothing useful to do.
		return
	}
}
