package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parseProm splits an exposition document into TYPE declarations and
// sample lines, failing on structurally invalid lines.
func parseProm(t *testing.T, doc string) (types map[string]string, samples map[string]float64) {
	t.Helper()
	types = map[string]string{}
	samples = map[string]float64{}
	for _, line := range strings.Split(doc, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return types, samples
}

// checkHistogram asserts the textbook shape of one exposition histogram:
// le labels strictly ascending, cumulative counts nondecreasing, and the
// terminal +Inf bucket equal to _count.
func checkHistogram(t *testing.T, samples map[string]float64, name string) {
	t.Helper()
	type bucket struct {
		le    float64
		count float64
	}
	var buckets []bucket
	prefix := name + `_bucket{le="`
	for k, v := range samples {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		leStr := strings.TrimSuffix(strings.TrimPrefix(k, prefix), `"}`)
		le := 0.0
		if leStr == "+Inf" {
			le = float64(1<<63 - 1)
		} else {
			var err error
			if le, err = strconv.ParseFloat(leStr, 64); err != nil {
				t.Fatalf("%s: bad le %q: %v", name, leStr, err)
			}
		}
		buckets = append(buckets, bucket{le, v})
	}
	if len(buckets) == 0 {
		t.Fatalf("%s: no buckets in exposition", name)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for i := 1; i < len(buckets); i++ {
		if buckets[i].count < buckets[i-1].count {
			t.Errorf("%s: cumulative count decreases at le=%g (%g -> %g)",
				name, buckets[i].le, buckets[i-1].count, buckets[i].count)
		}
	}
	count, ok := samples[name+"_count"]
	if !ok {
		t.Fatalf("%s: missing _count", name)
	}
	if inf := buckets[len(buckets)-1].count; inf != count {
		t.Errorf("%s: +Inf bucket %g != _count %g", name, inf, count)
	}
	if _, ok := samples[name+"_sum"]; !ok {
		t.Errorf("%s: missing _sum", name)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry("ix")
	r.Counter("commits.total").Add(7)
	r.Gauge("commits.inflight").Set(-2)
	h := r.Histogram("latency.ns")
	for i := uint64(1); i <= 100; i++ {
		h.Record(i * 37)
	}
	type inner struct{ Reclaimed uint64 }
	type census struct {
		Active  int
		Oldest  uint64
		Nested  inner
		Skipped string // non-numeric leaves are dropped
		private int    // unexported fields are dropped
	}
	r.Func("mvcc", func() any { return census{Active: 3, Oldest: 11, Nested: inner{Reclaimed: 5}, private: 9} })

	var buf bytes.Buffer
	WritePrometheus(&buf, r)
	doc := buf.String()
	types, samples := parseProm(t, doc)

	if v := samples["dualcdb_ix_commits_total"]; v != 7 {
		t.Errorf("counter sample = %v, want 7", v)
	}
	if types["dualcdb_ix_commits_total"] != "counter" {
		t.Errorf("counter TYPE = %q", types["dualcdb_ix_commits_total"])
	}
	if v := samples["dualcdb_ix_commits_inflight"]; v != -2 {
		t.Errorf("gauge sample = %v, want -2", v)
	}
	if types["dualcdb_ix_commits_inflight"] != "gauge" {
		t.Errorf("gauge TYPE = %q", types["dualcdb_ix_commits_inflight"])
	}
	if types["dualcdb_ix_latency_ns"] != "histogram" {
		t.Errorf("histogram TYPE = %q", types["dualcdb_ix_latency_ns"])
	}
	checkHistogram(t, samples, "dualcdb_ix_latency_ns")
	if v := samples["dualcdb_ix_latency_ns_count"]; v != 100 {
		t.Errorf("histogram _count = %v, want 100", v)
	}

	// Struct-valued func gauges flatten to snake_case leaves.
	if v := samples["dualcdb_ix_mvcc_active"]; v != 3 {
		t.Errorf("flattened mvcc_active = %v, want 3", v)
	}
	if v := samples["dualcdb_ix_mvcc_nested_reclaimed"]; v != 5 {
		t.Errorf("flattened nested leaf = %v, want 5", v)
	}
	for name := range samples {
		if strings.Contains(name, "skipped") || strings.Contains(name, "private") {
			t.Errorf("non-numeric or unexported field leaked into exposition: %s", name)
		}
	}

	// Every sample's metric name must be covered by a TYPE declaration.
	for name := range samples {
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		base = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base, "_bucket"), "_sum"), "_count")
		if _, ok := types[base]; !ok {
			t.Errorf("sample %s has no TYPE declaration (base %s)", name, base)
		}
	}
}

func TestPromNameSanitization(t *testing.T) {
	r := NewRegistry("my-ix.2")
	r.Counter("weird metric/name").Add(1)
	var buf bytes.Buffer
	WritePrometheus(&buf, r)
	_, samples := parseProm(t, buf.String())
	if v := samples["dualcdb_my_ix_2_weird_metric_name"]; v != 1 {
		t.Errorf("sanitized sample missing; got %v", samples)
	}
}

func TestWriteRuntimeMetrics(t *testing.T) {
	var buf bytes.Buffer
	WriteRuntimeMetrics(&buf)
	types, samples := parseProm(t, buf.String())
	if v, ok := samples["go_goroutines"]; !ok || v < 1 {
		t.Errorf("go_goroutines = %v, %v", v, ok)
	}
	if types["go_goroutines"] != "gauge" {
		t.Errorf("go_goroutines TYPE = %q", types["go_goroutines"])
	}
	if types["go_gc_pauses_seconds"] == "histogram" {
		checkHistogram(t, samples, "go_gc_pauses_seconds")
	}
}

// finishOne runs one observed commit batch through the trace lifecycle.
func finishOne(o *Observer, op string, version uint64, aborted bool, cause AbortCause, err error) {
	tr := o.StartCommit()
	sp := tr.Begin(CommitStageStage, 10, 2)
	sp.End(14, 5, 3) // cloned 4, freed 3
	o.FinishCommit(tr, CommitInfo{
		Op: op, Version: version, Inserts: 3,
		Aborted: aborted, Cause: cause, Err: err,
	})
}

func TestCommitFlightRing(t *testing.T) {
	o := New(Options{Name: "t", FlightCapacity: 8})
	for i := 0; i < 11; i++ {
		finishOne(o, fmt.Sprintf("op%d", i), uint64(i+1), false, "", nil)
	}
	recs := o.FlightRecords()
	if len(recs) != 8 {
		t.Fatalf("flight ring retained %d, want capacity 8", len(recs))
	}
	// Newest first: op10 down to op3.
	for i, r := range recs {
		if want := fmt.Sprintf("op%d", 10-i); r.Op != want {
			t.Errorf("recs[%d].Op = %q, want %q", i, r.Op, want)
		}
	}
	if recs[0].Cloned != 4 || recs[0].Freed != 3 {
		t.Errorf("trace span attribution cloned=%d freed=%d, want 4/3", recs[0].Cloned, recs[0].Freed)
	}
	snap := o.ObserverSnapshot()
	if snap.Commits != 11 || snap.CommitAborts != 0 {
		t.Errorf("commits=%d aborts=%d, want 11/0", snap.Commits, snap.CommitAborts)
	}
}

func TestAbortCauseCountersAndLog(t *testing.T) {
	var logBuf bytes.Buffer
	o := New(Options{
		Name:   "t",
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
		// No SlowThreshold: only aborted commits reach the slow ring/log.
	})
	finishOne(o, "insert", 5, false, "", nil)
	finishOne(o, "batch", 0, true, AbortExplicit, nil)
	finishOne(o, "delete", 0, true, AbortFault, fmt.Errorf("tuple not found"))

	snap := o.ObserverSnapshot()
	if snap.Commits != 1 || snap.CommitAborts != 2 || snap.AbortsFault != 1 || snap.AbortsExplicit != 1 {
		t.Errorf("commits=%d aborts=%d fault=%d explicit=%d, want 1/2/1/1",
			snap.Commits, snap.CommitAborts, snap.AbortsFault, snap.AbortsExplicit)
	}
	slow := o.SlowCommits()
	if len(slow) != 2 {
		t.Fatalf("slow-commit ring retained %d, want the 2 aborted", len(slow))
	}
	for _, r := range slow {
		if !r.Aborted {
			t.Errorf("non-aborted commit %q in slow ring without threshold", r.Op)
		}
	}
	log := logBuf.String()
	if !strings.Contains(log, "aborted commit") {
		t.Errorf("log missing aborted-commit records: %s", log)
	}
	if !strings.Contains(log, `"cause":"fault"`) || !strings.Contains(log, `"cause":"explicit"`) {
		t.Errorf("log missing abort causes: %s", log)
	}
	if !strings.Contains(log, "tuple not found") {
		t.Errorf("log missing abort error: %s", log)
	}
	if strings.Contains(log, `"op":"insert"`) {
		t.Errorf("published fast commit leaked into slow log: %s", log)
	}
}

func TestSlowCommitThreshold(t *testing.T) {
	o := New(Options{Name: "t", SlowThreshold: time.Nanosecond})
	finishOne(o, "insert", 2, false, "", nil)
	snap := o.ObserverSnapshot()
	if snap.CommitsSlow != 1 {
		t.Errorf("slow commits = %d, want 1", snap.CommitsSlow)
	}
	if len(o.SlowCommits()) != 1 {
		t.Errorf("slow ring retained %d, want 1", len(o.SlowCommits()))
	}
	if snap.CommitInflight != 0 {
		t.Errorf("inflight gauge = %d, want 0 after finish", snap.CommitInflight)
	}
}
