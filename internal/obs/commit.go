package obs

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// commitStageMetrics aggregates one commit stage across all observed
// commits.
type commitStageMetrics struct {
	ns     *Histogram
	cloned *Counter
	freed  *Counter
	items  *Counter
}

// commitRing is a fixed ring of finished commit traces: the flight
// recorder keeps every recent commit, the slow ring keeps only
// threshold-slow or aborted ones. Same overwrite-oldest semantics as
// the slow-query ring.
type commitRing struct {
	mu   sync.Mutex
	buf  []*CommitTrace //dualvet:guarded=mu
	next int            //dualvet:guarded=mu
	seen int            //dualvet:guarded=mu
}

func (r *commitRing) add(tr *CommitTrace) {
	r.mu.Lock()
	r.buf[r.next] = tr
	r.next = (r.next + 1) % len(r.buf)
	r.seen++
	r.mu.Unlock()
}

// snapshots returns the retained traces rendered newest first.
func (r *commitRing) snapshots() []CommitTraceSnapshot {
	r.mu.Lock()
	n := len(r.buf)
	trs := make([]*CommitTrace, 0, n)
	for i := 1; i <= n; i++ {
		if tr := r.buf[(r.next-i+n)%n]; tr != nil {
			trs = append(trs, tr)
		}
	}
	r.mu.Unlock()
	out := make([]CommitTraceSnapshot, 0, len(trs))
	for _, tr := range trs {
		out = append(out, tr.Snapshot())
	}
	return out
}

// StartCommit opens a trace for one commit batch. Pair with
// FinishCommit (the write path calls it from both Commit and Abort).
func (o *Observer) StartCommit() *CommitTrace {
	if o == nil {
		return nil
	}
	o.commitInflight.Add(1)
	return newCommitTrace()
}

// FinishCommit closes a trace opened by StartCommit, folding the
// commit-level counts and every recorded stage span into the metric
// registry, retaining the trace in the flight ring, and routing slow or
// aborted commits to the slow-commit ring and log.
func (o *Observer) FinishCommit(tr *CommitTrace, info CommitInfo) {
	if o == nil || tr == nil {
		return
	}
	o.commitInflight.Add(-1)
	total := time.Since(tr.begun)
	tr.finish(total, info)

	var cloned, freed uint64
	for _, sp := range tr.spansCopy() {
		m := &o.cstages[sp.Stage]
		m.ns.RecordDuration(sp.Dur)
		m.cloned.Add(sp.Cloned)
		m.freed.Add(sp.Freed)
		if sp.Items > 0 {
			m.items.Add(uint64(sp.Items))
		}
		cloned += sp.Cloned
		freed += sp.Freed
	}

	// commits.total and the latency/fan-out histograms cover published
	// commits only; aborted batches count under commits.aborted and its
	// per-cause split (their staged clone work still lands in the stage
	// aggregates above, since those pages really were cloned and freed).
	if info.Aborted {
		o.commitAborts.Inc()
		if info.Cause == AbortFault {
			o.abortFault.Inc()
		} else {
			o.abortExplicit.Inc()
		}
	} else {
		o.commits.Inc()
		o.commitNs.RecordDuration(total)
		o.cloneFanout.Record(cloned)
		o.supersededPg.Record(uint64(info.Superseded))
	}

	o.flight.add(tr)
	slow := o.slowThreshold > 0 && total >= o.slowThreshold
	if slow || info.Aborted {
		if slow {
			o.slowCommits.Inc()
		}
		o.slowCommitRing.add(tr)
		if o.logger != nil {
			o.logSlowCommit(tr, total, info, cloned, freed)
		}
	}
}

// RecordSnapshotAge records how long a reader held a pinned snapshot
// before releasing it — the MVCC health signal behind the version-lag
// and reclaim-backlog gauges. Nil-safe.
func (o *Observer) RecordSnapshotAge(age time.Duration) {
	if o == nil {
		return
	}
	o.snapAgeNs.RecordDuration(age)
}

// FlightRecords returns the flight recorder's retained commit traces,
// newest first — every recent commit, slow or not.
func (o *Observer) FlightRecords() []CommitTraceSnapshot {
	if o == nil {
		return nil
	}
	return o.flight.snapshots()
}

// SlowCommits returns the retained slow or aborted commit traces,
// newest first.
func (o *Observer) SlowCommits() []CommitTraceSnapshot {
	if o == nil {
		return nil
	}
	return o.slowCommitRing.snapshots()
}

// logSlowCommit emits one structured record per slow or aborted commit,
// with the stage breakdown as a nested group. Aborted commits always
// name their cause — fault (mid-batch mutation error) or explicit
// (caller Abort) — so aborts are never invisible in the log.
func (o *Observer) logSlowCommit(tr *CommitTrace, total time.Duration, info CommitInfo, cloned, freed uint64) {
	msg := "slow commit"
	if info.Aborted {
		msg = "aborted commit"
	}
	attrs := []slog.Attr{
		slog.String("index", o.name),
		slog.String("op", info.Op),
		slog.Uint64("version", info.Version),
		slog.Duration("total", total),
		slog.Int("inserts", info.Inserts),
		slog.Int("deletes", info.Deletes),
		slog.Int("superseded", info.Superseded),
		slog.Uint64("cloned", cloned),
		slog.Uint64("freed", freed),
	}
	if info.Aborted {
		attrs = append(attrs, slog.Bool("aborted", true), slog.String("cause", string(info.Cause)))
	}
	var stageAttrs []any
	for _, sp := range tr.spansCopy() {
		stageAttrs = append(stageAttrs, slog.Group(sp.Stage.String(),
			slog.Duration("dur", sp.Dur),
			slog.Uint64("cloned", sp.Cloned),
			slog.Uint64("freed", sp.Freed),
			slog.Int("items", sp.Items),
		))
	}
	if len(stageAttrs) > 0 {
		attrs = append(attrs, slog.Group("stages", stageAttrs...))
	}
	if info.Err != nil {
		attrs = append(attrs, slog.String("err", info.Err.Error()))
	}
	o.logger.LogAttrs(context.Background(), slog.LevelWarn, msg, attrs...)
}

// CommitStageSnapshot aggregates one commit stage across all observed
// commits.
type CommitStageSnapshot struct {
	Count   uint64            `json:"count"`
	Cloned  uint64            `json:"cloned"`
	Freed   uint64            `json:"freed"`
	Items   uint64            `json:"items"`
	Latency HistogramSnapshot `json:"latency"`
}
