package pagestore

// MVCC support: page cloning for copy-on-write tree updates and deferred
// reclamation of superseded pages.
//
// A copy-on-write commit never rewrites a page that a published root set
// can reach; it clones the page, mutates the clone, and hands the
// superseded original to DeferFrees tagged with the commit's version D
// (the first version at which the page is unreachable). Readers pin the
// version of the root set they sweep via PinVersion/UnpinVersion. A
// deferred page is freed once the min-referenced-version watermark — the
// smallest version any active snapshot still pins — reaches D: at that
// point every live snapshot observes a root set of version ≥ D, so no
// sweep can step onto the page. With no snapshots active the watermark is
// +∞ and superseded pages free immediately.

// ClonePage allocates a fresh page, copies src's current bytes into it,
// and returns the clone pinned and dirty. The source page's contents and
// version are untouched, which is what keeps decoded views of the original
// valid for concurrent snapshot readers.
func (p *Pool) ClonePage(src PageID) (*Frame, error) {
	sf, err := p.Get(src)
	if err != nil {
		return nil, err
	}
	nf, err := p.NewPage()
	if err != nil {
		sf.Release()
		return nil, err
	}
	copy(nf.Data(), sf.Data())
	sf.Release()
	p.clones.Add(1)
	return nf, nil
}

// CloneCount returns the cumulative number of ClonePage calls. Clones are
// made only while the index's writer lock is held, so commit tracing can
// attribute the delta across a stage to that stage exactly.
func (p *Pool) CloneCount() uint64 { return p.clones.Load() }

// ReclaimedCount returns the cumulative number of deferred pages freed by
// watermark reclamation (DeferFrees and UnpinVersion alike).
func (p *Pool) ReclaimedCount() uint64 { return p.reclaimed.Load() }

// deferredFrees is one commit's batch of superseded pages: ids becomes
// freeable when the snapshot watermark reaches deadAt.
type deferredFrees struct {
	deadAt uint64
	ids    []PageID
}

// PinVersion registers an active snapshot of the given commit version,
// holding back reclamation of any page superseded at a later version.
func (p *Pool) PinVersion(v uint64) {
	p.snapMu.Lock()
	p.snapRefs[v]++
	p.snapMu.Unlock()
}

// UnpinVersion releases one PinVersion reference and reclaims whatever the
// advanced watermark newly allows.
func (p *Pool) UnpinVersion(v uint64) {
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	n := p.snapRefs[v] - 1
	if n <= 0 {
		delete(p.snapRefs, v)
	} else {
		p.snapRefs[v] = n
	}
	p.reclaimLocked()
}

// DeferFrees schedules pages superseded by the commit that produced
// version deadAt: they are freed once no snapshot of an earlier version
// remains. Call after the new root set is published, so a concurrent
// Snapshot can no longer pin a version < deadAt. The return value is the
// number of deferred pages freed during this call (from this batch or
// older ones the advanced watermark released) — the commit trace's exact
// reclaim-stage attribution.
func (p *Pool) DeferFrees(deadAt uint64, ids []PageID) int {
	if len(ids) == 0 {
		return 0
	}
	p.deferredTotal.Add(uint64(len(ids)))
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	p.deferred = append(p.deferred, deferredFrees{deadAt: deadAt, ids: ids})
	return p.reclaimLocked()
}

// reclaimLocked frees every deferred batch the watermark has passed and
// returns the number of pages freed. Requires snapMu; takes shard locks
// via FreePage (snapMu is always outer, never acquired with a shard lock
// held). A FreePage failure keeps the remaining ids queued for the next
// reclamation attempt and is counted in SnapshotCensus.ReclaimFailures
// rather than surfaced: reclamation runs on reader-release paths that
// have no error channel of their own.
func (p *Pool) reclaimLocked() int {
	watermark := ^uint64(0)
	for v := range p.snapRefs {
		if v < watermark {
			watermark = v
		}
	}
	freed := 0
	kept := p.deferred[:0]
	for _, d := range p.deferred {
		if d.deadAt > watermark {
			kept = append(kept, d)
			continue
		}
		var failed []PageID
		for _, id := range d.ids {
			if err := p.FreePage(id); err != nil {
				p.reclaimFails.Add(1)
				failed = append(failed, id)
			} else {
				freed++
			}
		}
		if len(failed) > 0 {
			kept = append(kept, deferredFrees{deadAt: d.deadAt, ids: failed})
		}
	}
	p.deferred = kept
	if freed > 0 {
		p.reclaimed.Add(uint64(freed))
	}
	return freed
}

// SnapshotCensus reports the pool's MVCC state, for the obs gauges and the
// reclamation tests.
type SnapshotCensus struct {
	// Active is the number of live PinVersion references; Versions counts
	// the distinct pinned versions and Oldest is the watermark (0 when no
	// snapshot is active).
	Active   int
	Versions int
	Oldest   uint64
	// DeferredPages counts superseded pages awaiting reclamation (the
	// reclaim backlog); ReclaimFailures counts FreePage errors during
	// reclamation (the pages remain queued and are retried).
	DeferredPages   int
	ReclaimFailures uint64
	// DeferredTotal and Reclaimed are cumulative: pages ever queued by
	// DeferFrees and deferred pages actually freed by watermark
	// reclamation. With no pins active the two track each other and
	// DeferredPages is their difference plus failed-retry leftovers.
	DeferredTotal uint64
	Reclaimed     uint64
}

// SnapshotCensus returns a point-in-time census of active snapshot pins
// and deferred frees.
func (p *Pool) SnapshotCensus() SnapshotCensus {
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	c := SnapshotCensus{
		ReclaimFailures: p.reclaimFails.Load(),
		DeferredTotal:   p.deferredTotal.Load(),
		Reclaimed:       p.reclaimed.Load(),
	}
	for v, n := range p.snapRefs {
		c.Active += n
		c.Versions++
		if c.Oldest == 0 || v < c.Oldest {
			c.Oldest = v
		}
	}
	for _, d := range p.deferred {
		c.DeferredPages += len(d.ids)
	}
	return c
}
