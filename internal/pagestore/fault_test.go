package pagestore

import (
	"errors"
	"testing"
)

func TestFaultStoreReadFault(t *testing.T) {
	fs := NewFaultStore(NewMemStore(64))
	id, err := fs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	fs.FailReadAfter(2)
	if err := fs.ReadPage(id, buf); err != nil {
		t.Fatalf("first read should pass: %v", err)
	}
	if err := fs.ReadPage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("second read should fail: %v", err)
	}
	if err := fs.ReadPage(id, buf); err != nil {
		t.Fatalf("after tripping, reads recover: %v", err)
	}
}

func TestFaultStoreWriteAndAllocFaults(t *testing.T) {
	fs := NewFaultStore(NewMemStore(64))
	id, _ := fs.Alloc()
	buf := make([]byte, 64)
	fs.FailWriteAfter(1)
	if err := fs.WritePage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("write fault: %v", err)
	}
	fs.FailAllocAfter(1)
	if _, err := fs.Alloc(); !errors.Is(err, ErrInjected) {
		t.Fatalf("alloc fault: %v", err)
	}
	fs.Disarm()
	if _, err := fs.Alloc(); err != nil {
		t.Fatalf("disarmed alloc: %v", err)
	}
}

func TestPoolSurfacesReadFault(t *testing.T) {
	fs := NewFaultStore(NewMemStore(64))
	pool := NewPool(fs, 8)
	f, err := pool.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	f.Release()
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	fs.FailReadAfter(1)
	if _, err := pool.Get(id); !errors.Is(err, ErrInjected) {
		t.Fatalf("pool must surface the read fault, got %v", err)
	}
	// The pool must remain usable afterwards.
	g, err := pool.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
}

func TestPoolSurfacesEvictionWriteFault(t *testing.T) {
	fs := NewFaultStore(NewMemStore(64))
	pool := NewPool(fs, 8)
	// Dirty one page, then force eviction while writes fail.
	f, _ := pool.NewPage()
	f.MarkDirty()
	f.Release()
	fs.FailWriteAfter(1)
	var sawErr bool
	for i := 0; i < 10; i++ {
		g, err := pool.NewPage()
		if err != nil {
			sawErr = true
			break
		}
		g.Release()
	}
	if !sawErr {
		t.Fatal("eviction write-back fault never surfaced")
	}
}
