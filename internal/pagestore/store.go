// Package pagestore provides the secondary-storage substrate shared by the
// index structures: fixed-size pages, an in-memory and a file-backed page
// device, and an LRU buffer pool with I/O accounting.
//
// The paper's experiments (Section 5) measure page accesses with a page
// size of 1024 bytes; DefaultPageSize follows that. All index structures
// (the dual-representation B⁺-trees and the R⁺-tree baseline) allocate
// through the same pool so their I/O and space numbers are directly
// comparable.
package pagestore

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// DefaultPageSize is the page size used by the paper's experiments.
const DefaultPageSize = 1024

// PageID identifies a page within a store. 0 is never a valid page.
type PageID uint32

// InvalidPage is the zero PageID, used as a nil pointer on disk.
const InvalidPage PageID = 0

// ErrPageNotFound is returned when reading a page that was never
// allocated or has been freed.
var ErrPageNotFound = errors.New("pagestore: page not found")

// Store is a raw page device.
type Store interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// Alloc reserves a zeroed page and returns its id.
	Alloc() (PageID, error)
	// Free releases a page for reuse.
	Free(PageID) error
	// ReadPage fills buf (of PageSize bytes) with the page contents.
	ReadPage(id PageID, buf []byte) error
	// ReadPages fills bufs[i] (each of PageSize bytes) with the contents
	// of page ids[i] for a maximal prefix of readable pages and returns
	// how many were filled. A missing or freed page ends the prefix
	// without error; an I/O failure returns the count read so far and the
	// error. Implementations coalesce runs of consecutive ids (ascending
	// or descending) into single device reads where the medium allows.
	ReadPages(ids []PageID, bufs [][]byte) (int, error)
	// WritePage persists buf (of PageSize bytes) as the page contents.
	WritePage(id PageID, buf []byte) error
	// NumAllocated returns the number of live pages — the structure's
	// space occupancy in pages (Figure 10's metric).
	NumAllocated() int
	// Close releases resources.
	Close() error
}

// MemStore is an in-memory page device. It is the default substrate for
// experiments: "disk" I/O is still counted by the buffer pool, but runs
// are fast and reproducible.
type MemStore struct {
	mu       sync.Mutex
	pageSize int
	pages    map[PageID][]byte
	free     []PageID
	next     PageID
}

// NewMemStore creates an in-memory store with the given page size
// (DefaultPageSize if ≤ 0).
func NewMemStore(pageSize int) *MemStore {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemStore{pageSize: pageSize, pages: make(map[PageID][]byte), next: 1}
}

// PageSize returns the page size in bytes.
func (s *MemStore) PageSize() int { return s.pageSize }

// Alloc reserves a zeroed page.
func (s *MemStore) Alloc() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var id PageID
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		id = s.next
		s.next++
	}
	s.pages[id] = make([]byte, s.pageSize)
	return id, nil
}

// Free releases a page.
func (s *MemStore) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pages[id]; !ok {
		return ErrPageNotFound
	}
	delete(s.pages, id)
	s.free = append(s.free, id)
	return nil
}

// ReadPage copies the page contents into buf.
func (s *MemStore) ReadPage(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	copy(buf, p)
	return nil
}

// ReadPages copies each page into its buffer, stopping without error at
// the first missing page.
func (s *MemStore) ReadPages(ids []PageID, bufs [][]byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, id := range ids {
		p, ok := s.pages[id]
		if !ok {
			return i, nil
		}
		copy(bufs[i], p)
	}
	return len(ids), nil
}

// WritePage stores buf as the page contents.
func (s *MemStore) WritePage(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	copy(p, buf)
	return nil
}

// NumAllocated returns the number of live pages.
func (s *MemStore) NumAllocated() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// Close is a no-op for the in-memory store.
func (s *MemStore) Close() error { return nil }

// FileStore is a file-backed page device. Page n lives at byte offset
// (n−1)·pageSize. Freed pages are tracked in memory and reused by Alloc;
// the file is not compacted.
type FileStore struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	next     PageID
	free     []PageID
	live     map[PageID]bool
}

// OpenFileStore creates (truncating) a file-backed store at path.
func OpenFileStore(path string, pageSize int) (*FileStore, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: open %s: %w", path, err)
	}
	return &FileStore{f: f, pageSize: pageSize, next: 1, live: make(map[PageID]bool)}, nil
}

// OpenExistingFileStore reopens a file-backed store written earlier. Every
// page within the file is considered live: the in-memory free list does
// not survive restarts, so pages freed before the previous shutdown leak
// until the database is rebuilt (documented trade-off — the structures
// above never reference freed pages, so correctness is unaffected).
func OpenExistingFileStore(path string, pageSize int) (*FileStore, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: open %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pagestore: stat %s: %w", path, err)
	}
	if fi.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("pagestore: %s size %d is not a multiple of the page size %d",
			path, fi.Size(), pageSize)
	}
	n := PageID(fi.Size() / int64(pageSize))
	live := make(map[PageID]bool, n)
	for id := PageID(1); id <= n; id++ {
		live[id] = true
	}
	return &FileStore{f: f, pageSize: pageSize, next: n + 1, live: live}, nil
}

// PageSize returns the page size in bytes.
func (s *FileStore) PageSize() int { return s.pageSize }

// Alloc reserves a zeroed page.
func (s *FileStore) Alloc() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var id PageID
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		id = s.next
		s.next++
	}
	zero := make([]byte, s.pageSize)
	if _, err := s.f.WriteAt(zero, int64(id-1)*int64(s.pageSize)); err != nil {
		return InvalidPage, fmt.Errorf("pagestore: alloc page %d: %w", id, err)
	}
	s.live[id] = true
	return id, nil
}

// Free releases a page for reuse.
func (s *FileStore) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.live[id] {
		return ErrPageNotFound
	}
	delete(s.live, id)
	s.free = append(s.free, id)
	return nil
}

// ReadPage fills buf with the page contents.
func (s *FileStore) ReadPage(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.live[id] {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	if _, err := s.f.ReadAt(buf[:s.pageSize], int64(id-1)*int64(s.pageSize)); err != nil {
		return fmt.Errorf("pagestore: read page %d: %w", id, err)
	}
	return nil
}

// ReadPages reads a maximal live prefix of the pages, coalescing each run
// of consecutive ids — ascending or descending, as leaf sweeps in either
// direction produce — into a single ReadAt over the covered byte range,
// so a readahead batch over a bulk-loaded leaf chain costs one syscall
// instead of one per page.
func (s *FileStore) ReadPages(ids []PageID, bufs [][]byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for n < len(ids) && s.live[ids[n]] {
		n++
	}
	for start := 0; start < n; {
		end := start + 1
		step := int64(0)
		if end < n {
			switch int64(ids[end]) - int64(ids[start]) {
			case 1:
				step = 1
			case -1:
				step = -1
			}
		}
		if step != 0 {
			for end < n && int64(ids[end])-int64(ids[end-1]) == step {
				end++
			}
		}
		lo := ids[start]
		if step < 0 {
			lo = ids[end-1]
		}
		run := make([]byte, (end-start)*s.pageSize)
		if _, err := s.f.ReadAt(run, int64(lo-1)*int64(s.pageSize)); err != nil {
			// Retry the run page by page so a partial failure still yields
			// the maximal readable prefix.
			for i := start; i < end; i++ {
				off := int64(ids[i]-1) * int64(s.pageSize)
				if _, err := s.f.ReadAt(bufs[i][:s.pageSize], off); err != nil {
					return i, fmt.Errorf("pagestore: read page %d: %w", ids[i], err)
				}
			}
			start = end
			continue
		}
		for i := start; i < end; i++ {
			off := int(int64(ids[i])-int64(lo)) * s.pageSize
			copy(bufs[i], run[off:off+s.pageSize])
		}
		start = end
	}
	return n, nil
}

// WritePage persists buf as the page contents.
func (s *FileStore) WritePage(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.live[id] {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	if _, err := s.f.WriteAt(buf[:s.pageSize], int64(id-1)*int64(s.pageSize)); err != nil {
		return fmt.Errorf("pagestore: write page %d: %w", id, err)
	}
	return nil
}

// NumAllocated returns the number of live pages.
func (s *FileStore) NumAllocated() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}

// Close closes the backing file.
func (s *FileStore) Close() error { return s.f.Close() }
