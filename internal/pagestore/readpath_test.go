package pagestore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// fillPattern writes a page-sized deterministic pattern for id.
func fillPattern(buf []byte, id PageID) {
	for i := range buf {
		buf[i] = byte(uint32(id)*31 + uint32(i))
	}
}

// eachStore runs fn against a MemStore and a FileStore.
func eachStore(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) { fn(t, NewMemStore(128)) })
	t.Run("file", func(t *testing.T) {
		s, err := OpenFileStore(filepath.Join(t.TempDir(), "pages.db"), 128)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		fn(t, s)
	})
}

func TestReadPagesMatchesReadPage(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		const n = 12
		want := make(map[PageID][]byte)
		for i := 0; i < n; i++ {
			id, err := s.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, s.PageSize())
			fillPattern(buf, id)
			if err := s.WritePage(id, buf); err != nil {
				t.Fatal(err)
			}
			want[id] = buf
		}
		// Ascending, descending, and non-contiguous id patterns must all
		// return exactly what per-page ReadPage would.
		patterns := [][]PageID{
			{1, 2, 3, 4, 5},
			{9, 8, 7, 6},
			{2, 5, 6, 7, 3, 12, 11, 10},
			{4},
		}
		for _, ids := range patterns {
			bufs := make([][]byte, len(ids))
			for i := range bufs {
				bufs[i] = make([]byte, s.PageSize())
			}
			got, err := s.ReadPages(ids, bufs)
			if err != nil {
				t.Fatalf("ReadPages(%v): %v", ids, err)
			}
			if got != len(ids) {
				t.Fatalf("ReadPages(%v) = %d, want %d", ids, got, len(ids))
			}
			for i, id := range ids {
				if !bytes.Equal(bufs[i], want[id]) {
					t.Fatalf("ReadPages(%v): page %d contents differ", ids, id)
				}
			}
		}
	})
}

func TestReadPagesStopsAtMissingPage(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		for i := 0; i < 5; i++ {
			if _, err := s.Alloc(); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Free(3); err != nil {
			t.Fatal(err)
		}
		ids := []PageID{1, 2, 3, 4}
		bufs := make([][]byte, len(ids))
		for i := range bufs {
			bufs[i] = make([]byte, s.PageSize())
		}
		got, err := s.ReadPages(ids, bufs)
		if err != nil {
			t.Fatalf("ReadPages: %v", err)
		}
		if got != 2 {
			t.Fatalf("ReadPages stopping at freed page: got %d, want 2", got)
		}
		// A missing first page yields an empty prefix, not an error.
		got, err = s.ReadPages([]PageID{3, 4}, bufs[:2])
		if err != nil || got != 0 {
			t.Fatalf("ReadPages(freed head) = (%d, %v), want (0, nil)", got, err)
		}
	})
}

func TestFaultStoreReadPagesPerPageAccounting(t *testing.T) {
	inner := NewMemStore(64)
	for i := 0; i < 6; i++ {
		if _, err := inner.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	fs := NewFaultStore(inner)
	// Each page of a batch consumes one tick: arming after 3 lets two
	// batched pages through and fails the third.
	fs.FailReadAfter(3)
	ids := []PageID{1, 2, 3, 4, 5}
	bufs := make([][]byte, len(ids))
	for i := range bufs {
		bufs[i] = make([]byte, 64)
	}
	n, err := fs.ReadPages(ids, bufs)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != 2 {
		t.Fatalf("n = %d, want 2 pages before the fault", n)
	}
	// Disarmed: the whole batch goes through.
	n, err = fs.ReadPages(ids, bufs)
	if err != nil || n != len(ids) {
		t.Fatalf("disarmed ReadPages = (%d, %v), want (%d, nil)", n, err, len(ids))
	}
}

func TestFrameVersionBumpsOnMarkDirtyAndSurvivesEviction(t *testing.T) {
	store := NewMemStore(64)
	pool := NewPool(store, 16)
	f, err := pool.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	v0 := f.Version()
	f.MarkDirty()
	if v := f.Version(); v <= v0 {
		t.Fatalf("MarkDirty did not advance version: %d -> %d", v0, v)
	}
	f.MarkDirty()
	v1 := f.Version()
	f.Release()

	// Evict and re-read: the version must resume at (not below) the saved
	// stamp, so a decode cached under v1 can never be revalidated by a
	// fresh frame that restarted at zero.
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	g, err := pool.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if g.Version() < v1 {
		t.Fatalf("version regressed across eviction: %d < %d", g.Version(), v1)
	}
	g.Release()
}

func TestFreedPageIDGetsNewVersionOnReuse(t *testing.T) {
	store := NewMemStore(64)
	pool := NewPool(store, 16)
	f, err := pool.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	f.MarkDirty()
	vOld := f.Version()
	f.Release()
	if err := pool.FreePage(id); err != nil {
		t.Fatal(err)
	}
	g, err := pool.NewPage() // MemStore reuses the freed id
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	if g.ID() != id {
		t.Skipf("store did not reuse id %d (got %d)", id, g.ID())
	}
	if g.Version() <= vOld {
		t.Fatalf("reused page id %d kept version %d (old %d); stale decodes would revalidate", id, g.Version(), vOld)
	}
}

// pinOnce fetches and releases a page.
func pinOnce(t *testing.T, pool *Pool, id PageID) {
	t.Helper()
	f, err := pool.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
}

// tenureAll ages the hot pages into the old region under the tenure
// window: first access, then enough distinct filler accesses to satisfy
// the age spacing, then the tenuring re-pin. The fillers must fit in the
// pool alongside the hot pages and must not be re-pinned afterwards, or
// they would tenure too.
func tenureAll(t *testing.T, pool *Pool, hot, filler []PageID) {
	t.Helper()
	for _, id := range hot {
		pinOnce(t, pool, id)
	}
	for _, id := range filler {
		pinOnce(t, pool, id)
	}
	for _, id := range hot {
		pinOnce(t, pool, id)
	}
}

func TestMidpointLRUScanResistance(t *testing.T) {
	store := NewMemStore(64)
	const capacity = 16
	pool := NewPool(store, capacity)
	const total = 64
	for i := 0; i < total; i++ {
		if _, err := store.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	// Tenure a few "inner node" pages: an aged re-pin moves them into the
	// old region. Fillers 4..11 provide the distinct-page spacing the
	// tenure window requires and are not touched again (a later re-pin
	// would tenure them as well).
	hot := []PageID{1, 2, 3}
	filler := []PageID{4, 5, 6, 7, 8, 9, 10, 11}
	tenureAll(t, pool, hot, filler)
	pool.ResetStats()

	// One long scan over everything else, touching each page once.
	for id := PageID(12); id <= total; id++ {
		f, err := pool.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	if ev := pool.Stats().OldEvictions; ev != 0 {
		t.Fatalf("scan evicted %d old-region pages; midpoint LRU should drain scans through young", ev)
	}

	// The tenured pages must still be resident: re-pinning them must not
	// read from the store.
	pool.ResetStats()
	for _, id := range hot {
		f, err := pool.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	if pr := pool.Stats().PhysicalReads; pr != 0 {
		t.Fatalf("hot pages were evicted by the scan: %d physical reads after scan", pr)
	}
}

func TestPlainLRUScanEvictsHotPages(t *testing.T) {
	store := NewMemStore(64)
	pool := NewPoolWithOptions(store, PoolOptions{Capacity: 16, Shards: 1, PlainLRU: true})
	const total = 64
	for i := 0; i < total; i++ {
		if _, err := store.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	hot := []PageID{1, 2, 3}
	tenureAll(t, pool, hot, []PageID{4, 5, 6, 7, 8, 9, 10, 11})
	for id := PageID(12); id <= total; id++ {
		f, err := pool.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	st := pool.Stats()
	if st.OldEvictions != 0 {
		t.Fatalf("plain LRU reported %d old evictions; the old region should be unused", st.OldEvictions)
	}
	pool.ResetStats()
	for _, id := range hot {
		f, err := pool.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	if pr := pool.Stats().PhysicalReads; pr == 0 {
		t.Fatal("plain LRU kept hot pages resident through a full scan; expected them evicted (the baseline behavior the midpoint LRU fixes)")
	}
}

func TestOldRegionCapDemotesToYoung(t *testing.T) {
	store := NewMemStore(64)
	pool := NewPoolWithOptions(store, PoolOptions{Capacity: 16, Shards: 1})
	const total = 40
	for i := 0; i < total; i++ {
		if _, err := store.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	// Tenure more pages than the old region can hold; rebalancing must
	// demote the overflow instead of letting old grow to the whole shard.
	// Two interleaved passes over 12 resident pages give every re-pin an
	// age of ~12 distinct accesses, past the tenure window, without
	// evicting anything (12 < capacity).
	for pass := 0; pass < 2; pass++ {
		for id := PageID(1); id <= 12; id++ {
			pinOnce(t, pool, id)
		}
	}
	sh := pool.shards[0]
	sh.mu.Lock()
	oldLen, youngLen, oldCap := sh.old.len(), sh.young.len(), sh.oldCap
	sh.mu.Unlock()
	if oldLen > oldCap {
		t.Fatalf("old region %d exceeds its cap %d", oldLen, oldCap)
	}
	if youngLen == 0 {
		t.Fatal("expected demoted pages in the young region")
	}
}

// chainStore lays out a synthetic page chain: page n links to n+1 (asc) at
// offset 4 and to n−1 (desc) at offset 8, mimicking the btree leaf header.
func buildChain(t *testing.T, s Store, n int) []PageID {
	t.Helper()
	ids := make([]PageID, n)
	for i := 0; i < n; i++ {
		id, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		buf := make([]byte, s.PageSize())
		buf[0] = 1 // "leaf" tag
		var next, prev PageID
		if i+1 < n {
			next = ids[i+1]
		}
		if i > 0 {
			prev = ids[i-1]
		}
		binary.LittleEndian.PutUint32(buf[4:8], uint32(next))
		binary.LittleEndian.PutUint32(buf[8:12], uint32(prev))
		fillPattern(buf[16:], id)
		if err := s.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

func chainNext(page []byte) PageID {
	if len(page) < 16 || page[0] != 1 {
		return InvalidPage
	}
	return PageID(binary.LittleEndian.Uint32(page[4:8]))
}

func chainPrev(page []byte) PageID {
	if len(page) < 16 || page[0] != 1 {
		return InvalidPage
	}
	return PageID(binary.LittleEndian.Uint32(page[8:12]))
}

func TestGetChainTrackedReadahead(t *testing.T) {
	for _, dir := range []int{+1, -1} {
		t.Run(fmt.Sprintf("dir=%+d", dir), func(t *testing.T) {
			store := NewMemStore(64)
			pool := NewPoolWithOptions(store, PoolOptions{Capacity: 64, Shards: 1})
			ids := buildChain(t, store, 16)
			next := chainNext
			order := ids
			if dir < 0 {
				next = chainPrev
				order = make([]PageID, len(ids))
				for i, id := range ids {
					order[len(ids)-1-i] = id
				}
			}
			rc := &ReadCounter{}
			for _, id := range order {
				f, err := pool.GetChainTracked(id, 4, dir, next, rc)
				if err != nil {
					t.Fatal(err)
				}
				if f.ID() != id {
					t.Fatalf("got page %d, want %d", f.ID(), id)
				}
				var want [64]byte
				want[0] = 1
				fillPattern(want[16:], id)
				if !bytes.Equal(f.Data()[16:], want[16:]) {
					t.Fatalf("page %d contents differ", id)
				}
				f.Release()
			}
			st := pool.Stats()
			// A full sweep reads each chain page exactly once, readahead or
			// not — that is the PhysicalReads-unchanged contract.
			if st.PhysicalReads != uint64(len(ids)) {
				t.Fatalf("PhysicalReads = %d, want %d", st.PhysicalReads, len(ids))
			}
			if rc.Physical.Load() != uint64(len(ids)) {
				t.Fatalf("rc.Physical = %d, want %d", rc.Physical.Load(), len(ids))
			}
			if st.ReadaheadBatches == 0 || st.ReadaheadPages == 0 {
				t.Fatalf("no readahead recorded: %+v", st)
			}
		})
	}
}

func TestGetChainTrackedDoesNotAdmitOffChainPages(t *testing.T) {
	store := NewMemStore(64)
	pool := NewPoolWithOptions(store, PoolOptions{Capacity: 64, Shards: 1})
	ids := buildChain(t, store, 2) // pages 1,2 chained
	// Page 3 is allocated but NOT on the chain (page 2's next is 0).
	loner, err := store.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	f, err := pool.GetChainTracked(ids[0], 4, +1, chainNext, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	// The loner page must not be in the pool: fetching it now must be a
	// physical read.
	pool.ResetStats()
	g, err := pool.Get(loner)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	if pr := pool.Stats().PhysicalReads; pr != 1 {
		t.Fatalf("off-chain page was admitted by readahead (physical reads = %d, want 1)", pr)
	}
}

func TestGetChainTrackedFaults(t *testing.T) {
	inner := NewMemStore(64)
	ids := buildChain(t, inner, 8)
	fs := NewFaultStore(inner)
	pool := NewPoolWithOptions(fs, PoolOptions{Capacity: 64, Shards: 1})

	// Fault on a readahead page (second of the batch): the demanded page
	// must still be served; the batch is just truncated.
	fs.FailReadAfter(2)
	f, err := pool.GetChainTracked(ids[0], 4, +1, chainNext, nil)
	if err != nil {
		t.Fatalf("demanded page should survive a readahead-only fault: %v", err)
	}
	f.Release()
	fs.Disarm()
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}

	// Fault on the demanded page itself: the error must surface.
	fs.FailReadAfter(1)
	if _, err := pool.GetChainTracked(ids[4], 4, +1, chainNext, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	fs.Disarm()
}

func TestGetChainTrackedConcurrentSweeps(t *testing.T) {
	store := NewMemStore(64)
	pool := NewPoolWithOptions(store, PoolOptions{Capacity: 32, Shards: 4})
	ids := buildChain(t, store, 48)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(dir int) {
			defer wg.Done()
			rc := &ReadCounter{}
			order := ids
			next := chainNext
			if dir < 0 {
				next = chainPrev
				order = make([]PageID, len(ids))
				for i, id := range ids {
					order[len(ids)-1-i] = id
				}
			}
			for _, id := range order {
				f, err := pool.GetChainTracked(id, 4, dir, next, rc)
				if err != nil {
					errs <- err
					return
				}
				if f.ID() != id {
					errs <- fmt.Errorf("got page %d, want %d", f.ID(), id)
					return
				}
				f.Release()
			}
		}(1 - 2*(w%2))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestTenureWindowResistsTightRePinLoops pins the tenure-age fix: a page
// re-pinned in a tight loop never accumulates distinct-page accesses, so
// it must stay in the young region however often it is touched. A
// negative TenureAge restores the historical tenure-on-any-re-pin
// behavior for comparison.
func TestTenureWindowResistsTightRePinLoops(t *testing.T) {
	store := NewMemStore(64)
	for i := 0; i < 8; i++ {
		if _, err := store.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	pool := NewPoolWithOptions(store, PoolOptions{Capacity: 16, Shards: 1})
	for i := 0; i < 100; i++ {
		pinOnce(t, pool, 1)
	}
	sh := pool.shards[0]
	sh.mu.Lock()
	oldLen := sh.old.len()
	sh.mu.Unlock()
	if oldLen != 0 {
		t.Fatalf("tight re-pin loop tenured %d pages; the age window should keep them young", oldLen)
	}

	legacy := NewPoolWithOptions(store, PoolOptions{Capacity: 16, Shards: 1, TenureAge: -1})
	pinOnce(t, legacy, 1)
	pinOnce(t, legacy, 1)
	sh = legacy.shards[0]
	sh.mu.Lock()
	oldLen = sh.old.len()
	sh.mu.Unlock()
	if oldLen != 1 {
		t.Fatalf("TenureAge<0 should tenure on any re-pin; old region holds %d", oldLen)
	}
}

// TestChainHintsDriveReadaheadAfterScatter exercises hint-driven chain
// readahead on a chain whose on-disk page order is scrambled, the state a
// split-churned leaf level ends up in: contiguity speculation confirms
// nothing, but the first sweep teaches the pool the real links, so the
// second sweep batches along them — with per-sweep physical reads still
// exactly one per chain page.
func TestChainHintsDriveReadaheadAfterScatter(t *testing.T) {
	store := NewMemStore(64)
	pool := NewPoolWithOptions(store, PoolOptions{Capacity: 64, Shards: 1})
	const n = 12
	ids := make([]PageID, n)
	for i := range ids {
		id, err := store.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// Chain order visits the allocated ids far from sequentially.
	order := []int{0, 7, 2, 9, 4, 11, 6, 1, 8, 3, 10, 5}
	chain := make([]PageID, n)
	for pos, idx := range order {
		chain[pos] = ids[idx]
	}
	for pos, id := range chain {
		buf := make([]byte, store.PageSize())
		buf[0] = 1
		var next, prev PageID
		if pos+1 < n {
			next = chain[pos+1]
		}
		if pos > 0 {
			prev = chain[pos-1]
		}
		binary.LittleEndian.PutUint32(buf[4:8], uint32(next))
		binary.LittleEndian.PutUint32(buf[8:12], uint32(prev))
		fillPattern(buf[16:], id)
		if err := store.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	sweep := func() Stats {
		if err := pool.EvictAll(); err != nil {
			t.Fatal(err)
		}
		pool.ResetStats()
		for _, id := range chain {
			f, err := pool.GetChainTracked(id, 4, +1, chainNext, nil)
			if err != nil {
				t.Fatal(err)
			}
			if f.ID() != id {
				t.Fatalf("got page %d, want %d", f.ID(), id)
			}
			f.Release()
		}
		return pool.Stats()
	}
	first := sweep()
	second := sweep()
	if first.PhysicalReads != n || second.PhysicalReads != n {
		t.Fatalf("physical reads per sweep = %d/%d, want %d each (paper-exact I/O)",
			first.PhysicalReads, second.PhysicalReads, n)
	}
	if second.ReadaheadPages <= first.ReadaheadPages {
		t.Fatalf("learned links did not improve batching: readahead pages %d -> %d",
			first.ReadaheadPages, second.ReadaheadPages)
	}
}
