package pagestore

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// Stats accumulates the buffer pool's I/O counters. PhysicalReads is the
// number the paper's figures plot: page transfers from secondary storage,
// which with a per-query cold cache equals the number of distinct pages a
// query touches.
type Stats struct {
	LogicalReads  uint64 // Get calls
	PhysicalReads uint64 // pages fetched from the store (cache misses)
	Writes        uint64 // pages written back to the store
	Allocs        uint64 // pages allocated
	Frees         uint64 // pages freed
}

// Pool is an LRU buffer pool over a Store. Frames are pinned while in use;
// unpinned dirty frames are written back on eviction or Flush.
//
// A Pool is safe for use from a single goroutine per structure operation;
// the internal mutex only protects the counters and tables against
// incidental cross-goroutine sharing in tests.
type Pool struct {
	mu       sync.Mutex
	store    Store
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // of PageID, most-recent at front; only unpinned pages
	lruPos   map[PageID]*list.Element
	stats    Stats
}

// Frame is a pinned page in the buffer pool. Callers must Release it when
// done and MarkDirty after mutating Data.
type Frame struct {
	pool  *Pool
	id    PageID
	data  []byte
	pins  int
	dirty bool
}

// ErrPoolFull is returned when every frame is pinned and a new page is
// requested.
var ErrPoolFull = errors.New("pagestore: all buffer frames pinned")

// NewPool creates a buffer pool with the given frame capacity (minimum 8).
func NewPool(store Store, capacity int) *Pool {
	if capacity < 8 {
		capacity = 8
	}
	return &Pool{
		store:    store,
		capacity: capacity,
		frames:   make(map[PageID]*Frame),
		lru:      list.New(),
		lruPos:   make(map[PageID]*list.Element),
	}
}

// Store returns the underlying page device.
func (p *Pool) Store() Store { return p.store }

// PageSize returns the page size in bytes.
func (p *Pool) PageSize() int { return p.store.PageSize() }

// Get pins the page with the given id, reading it from the store on a miss.
func (p *Pool) Get(id PageID) (*Frame, error) {
	if id == InvalidPage {
		return nil, errors.New("pagestore: Get(InvalidPage)")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.LogicalReads++
	if f, ok := p.frames[id]; ok {
		p.pinLocked(f)
		return f, nil
	}
	if err := p.ensureRoomLocked(); err != nil {
		return nil, err
	}
	buf := make([]byte, p.store.PageSize())
	if err := p.store.ReadPage(id, buf); err != nil {
		return nil, err
	}
	p.stats.PhysicalReads++
	f := &Frame{pool: p, id: id, data: buf, pins: 1}
	p.frames[id] = f
	return f, nil
}

// NewPage allocates a fresh zeroed page and returns it pinned and dirty.
func (p *Pool) NewPage() (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.ensureRoomLocked(); err != nil {
		return nil, err
	}
	id, err := p.store.Alloc()
	if err != nil {
		return nil, err
	}
	p.stats.Allocs++
	f := &Frame{pool: p, id: id, data: make([]byte, p.store.PageSize()), pins: 1, dirty: true}
	p.frames[id] = f
	return f, nil
}

// FreePage removes the page from the pool and the store. The page must not
// be pinned.
func (p *Pool) FreePage(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok {
		if f.pins > 0 {
			return fmt.Errorf("pagestore: freeing pinned page %d", id)
		}
		p.dropLocked(id)
	}
	p.stats.Frees++
	return p.store.Free(id)
}

// pinLocked pins an in-pool frame, removing it from the eviction list.
func (p *Pool) pinLocked(f *Frame) {
	f.pins++
	if el, ok := p.lruPos[f.id]; ok {
		p.lru.Remove(el)
		delete(p.lruPos, f.id)
	}
}

// ensureRoomLocked evicts the least-recently-used unpinned frame when the
// pool is at capacity.
func (p *Pool) ensureRoomLocked() error {
	if len(p.frames) < p.capacity {
		return nil
	}
	el := p.lru.Back()
	if el == nil {
		return ErrPoolFull
	}
	id := el.Value.(PageID)
	f := p.frames[id]
	if f.dirty {
		if err := p.store.WritePage(id, f.data); err != nil {
			return err
		}
		p.stats.Writes++
		f.dirty = false
	}
	p.dropLocked(id)
	return nil
}

func (p *Pool) dropLocked(id PageID) {
	if el, ok := p.lruPos[id]; ok {
		p.lru.Remove(el)
		delete(p.lruPos, id)
	}
	delete(p.frames, id)
}

// Flush writes back all dirty frames (pinned or not) without evicting them.
func (p *Pool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, f := range p.frames {
		if f.dirty {
			if err := p.store.WritePage(id, f.data); err != nil {
				return err
			}
			p.stats.Writes++
			f.dirty = false
		}
	}
	return nil
}

// EvictAll flushes and drops every unpinned frame — a "cold cache" reset so
// the next query's PhysicalReads counts each touched page exactly once.
func (p *Pool) EvictAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, f := range p.frames {
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			if err := p.store.WritePage(id, f.data); err != nil {
				return err
			}
			p.stats.Writes++
			f.dirty = false
		}
		p.dropLocked(id)
	}
	return nil
}

// Stats returns a snapshot of the I/O counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the I/O counters.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// ID returns the frame's page id.
func (f *Frame) ID() PageID { return f.id }

// Data returns the page bytes; mutate only while pinned and call MarkDirty.
func (f *Frame) Data() []byte { return f.data }

// MarkDirty records that the page bytes changed.
func (f *Frame) MarkDirty() { f.dirty = true }

// Release unpins the frame. Unpinned frames become eviction candidates.
func (f *Frame) Release() {
	p := f.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins == 0 {
		panic(fmt.Sprintf("pagestore: over-release of page %d", f.id))
	}
	f.pins--
	if f.pins == 0 {
		el := p.lru.PushFront(f.id)
		p.lruPos[f.id] = el
	}
}
