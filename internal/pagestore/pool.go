package pagestore

import (
	"container/list"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Stats accumulates the buffer pool's I/O counters. PhysicalReads is the
// number the paper's figures plot: page transfers from secondary storage,
// which with a per-query cold cache equals the number of distinct pages a
// query touches.
type Stats struct {
	LogicalReads  uint64 // Get calls
	PhysicalReads uint64 // pages fetched from the store (cache misses)
	Writes        uint64 // pages written back to the store
	Allocs        uint64 // pages allocated
	Frees         uint64 // pages freed
}

// ReadCounter is a per-caller I/O counter threaded through GetTracked so a
// single query can account exactly for the page reads it caused, without
// the before/after delta on the shared pool counters that is racy when
// several queries run concurrently. The fields are atomics because one
// query may fan its tree sweeps across goroutines.
type ReadCounter struct {
	Logical  atomic.Uint64 // Get calls attributed to this counter
	Physical atomic.Uint64 // cache misses this counter's Gets triggered
}

// Pool is an LRU buffer pool over a Store, split into power-of-two many
// shards keyed by a PageID hash. Each shard has its own mutex, frame table
// and LRU list, so concurrent readers touching different pages rarely
// contend; the I/O counters are atomics shared by all shards. Frames are
// pinned while in use; unpinned dirty frames are written back on eviction
// or Flush.
//
// A single-shard pool (NewPool) behaves exactly like the historical
// implementation: one mutex, one LRU list, one capacity.
type Pool struct {
	store  Store
	shards []*poolShard
	shift  uint // 32 - log2(len(shards)); hash>>shift indexes the shard

	logicalReads  atomic.Uint64
	physicalReads atomic.Uint64
	writes        atomic.Uint64
	allocs        atomic.Uint64
	frees         atomic.Uint64
}

// poolShard is one independently locked slice of the pool.
type poolShard struct {
	mu       sync.Mutex
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // of PageID, most-recent at front; only unpinned pages
	lruPos   map[PageID]*list.Element
}

// Frame is a pinned page in the buffer pool. Callers must Release it when
// done and MarkDirty after mutating Data.
type Frame struct {
	shard *poolShard
	id    PageID
	data  []byte
	pins  int
	dirty bool
}

// ErrPoolFull is returned when every frame of the page's shard is pinned
// and a new page is requested.
var ErrPoolFull = errors.New("pagestore: all buffer frames pinned")

// NewPool creates a single-shard buffer pool with the given frame capacity
// (minimum 8) — the historical behavior, appropriate for single-threaded
// workloads and for tests that reason about one global LRU order.
func NewPool(store Store, capacity int) *Pool {
	return NewShardedPool(store, capacity, 1)
}

// NewShardedPool creates a buffer pool whose frames are distributed over
// nextPow2(shards) independently locked shards (shards ≤ 0 selects
// nextPow2(GOMAXPROCS)). The total capacity is divided evenly; every shard
// holds at least 8 frames, so the effective total can exceed capacity when
// capacity < 8·shards.
func NewShardedPool(store Store, capacity, shards int) *Pool {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := nextPow2(shards)
	per := capacity / n
	if per < 8 {
		per = 8
	}
	p := &Pool{store: store, shards: make([]*poolShard, n), shift: 32 - log2(n)}
	for i := range p.shards {
		p.shards[i] = &poolShard{
			capacity: per,
			frames:   make(map[PageID]*Frame),
			lru:      list.New(),
			lruPos:   make(map[PageID]*list.Element),
		}
	}
	return p
}

// nextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// log2 of a power of two.
func log2(n int) uint {
	var s uint
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}

// shardOf routes a page id to its shard by Fibonacci hashing: the high
// bits of id·2654435761 index the shard table. For a single-shard pool the
// shift is 32, which Go defines to yield 0.
func (p *Pool) shardOf(id PageID) *poolShard {
	return p.shards[(uint32(id)*2654435761)>>p.shift]
}

// Shards returns the number of shards.
func (p *Pool) Shards() int { return len(p.shards) }

// Store returns the underlying page device.
func (p *Pool) Store() Store { return p.store }

// PageSize returns the page size in bytes.
func (p *Pool) PageSize() int { return p.store.PageSize() }

// Get pins the page with the given id, reading it from the store on a miss.
func (p *Pool) Get(id PageID) (*Frame, error) { return p.GetTracked(id, nil) }

// GetTracked is Get with per-caller accounting: when rc is non-nil, its
// Logical counter is bumped for the call and its Physical counter for a
// cache miss this call itself served. The attribution is exact — a miss is
// charged to exactly the caller whose Get read the page from the store —
// which makes per-query I/O numbers stable under concurrency.
func (p *Pool) GetTracked(id PageID, rc *ReadCounter) (*Frame, error) {
	if id == InvalidPage {
		return nil, errors.New("pagestore: Get(InvalidPage)")
	}
	p.logicalReads.Add(1)
	if rc != nil {
		rc.Logical.Add(1)
	}
	sh := p.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f, ok := sh.frames[id]; ok {
		sh.pinLocked(f)
		return f, nil
	}
	if err := sh.ensureRoomLocked(p); err != nil {
		return nil, err
	}
	buf := make([]byte, p.store.PageSize())
	if err := p.store.ReadPage(id, buf); err != nil {
		return nil, err
	}
	p.physicalReads.Add(1)
	if rc != nil {
		rc.Physical.Add(1)
	}
	f := &Frame{shard: sh, id: id, data: buf, pins: 1}
	sh.frames[id] = f
	return f, nil
}

// NewPage allocates a fresh zeroed page and returns it pinned and dirty.
func (p *Pool) NewPage() (*Frame, error) {
	id, err := p.store.Alloc()
	if err != nil {
		return nil, err
	}
	sh := p.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.ensureRoomLocked(p); err != nil {
		// Undo the allocation so the store does not leak the page.
		_ = p.store.Free(id)
		return nil, err
	}
	p.allocs.Add(1)
	f := &Frame{shard: sh, id: id, data: make([]byte, p.store.PageSize()), pins: 1, dirty: true}
	sh.frames[id] = f
	return f, nil
}

// FreePage removes the page from the pool and the store. The page must not
// be pinned.
func (p *Pool) FreePage(id PageID) error {
	sh := p.shardOf(id)
	sh.mu.Lock()
	if f, ok := sh.frames[id]; ok {
		if f.pins > 0 {
			sh.mu.Unlock()
			return fmt.Errorf("pagestore: freeing pinned page %d", id)
		}
		sh.dropLocked(id)
	}
	sh.mu.Unlock()
	p.frees.Add(1)
	return p.store.Free(id)
}

// pinLocked pins an in-shard frame, removing it from the eviction list.
func (sh *poolShard) pinLocked(f *Frame) {
	f.pins++
	if el, ok := sh.lruPos[f.id]; ok {
		sh.lru.Remove(el)
		delete(sh.lruPos, f.id)
	}
}

// ensureRoomLocked evicts the shard's least-recently-used unpinned frame
// when the shard is at capacity.
func (sh *poolShard) ensureRoomLocked(p *Pool) error {
	if len(sh.frames) < sh.capacity {
		return nil
	}
	el := sh.lru.Back()
	if el == nil {
		return ErrPoolFull
	}
	id := el.Value.(PageID)
	f := sh.frames[id]
	if f.dirty {
		if err := p.store.WritePage(id, f.data); err != nil {
			return err
		}
		p.writes.Add(1)
		f.dirty = false
	}
	sh.dropLocked(id)
	return nil
}

func (sh *poolShard) dropLocked(id PageID) {
	if el, ok := sh.lruPos[id]; ok {
		sh.lru.Remove(el)
		delete(sh.lruPos, id)
	}
	delete(sh.frames, id)
}

// Flush writes back all dirty frames (pinned or not) without evicting them.
func (p *Pool) Flush() error {
	for _, sh := range p.shards {
		sh.mu.Lock()
		for id, f := range sh.frames {
			if f.dirty {
				if err := p.store.WritePage(id, f.data); err != nil {
					sh.mu.Unlock()
					return err
				}
				p.writes.Add(1)
				f.dirty = false
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// EvictAll flushes and drops every unpinned frame — a "cold cache" reset so
// the next query's PhysicalReads counts each touched page exactly once.
func (p *Pool) EvictAll() error {
	for _, sh := range p.shards {
		sh.mu.Lock()
		for id, f := range sh.frames {
			if f.pins > 0 {
				continue
			}
			if f.dirty {
				if err := p.store.WritePage(id, f.data); err != nil {
					sh.mu.Unlock()
					return err
				}
				p.writes.Add(1)
				f.dirty = false
			}
			sh.dropLocked(id)
		}
		sh.mu.Unlock()
	}
	return nil
}

// Stats returns a snapshot of the I/O counters. Under concurrent use the
// counters are updated atomically but the snapshot as a whole is not a
// consistent cut; per-query accounting should use GetTracked instead of
// deltas of this snapshot.
func (p *Pool) Stats() Stats {
	return Stats{
		LogicalReads:  p.logicalReads.Load(),
		PhysicalReads: p.physicalReads.Load(),
		Writes:        p.writes.Load(),
		Allocs:        p.allocs.Load(),
		Frees:         p.frees.Load(),
	}
}

// ResetStats zeroes the I/O counters.
func (p *Pool) ResetStats() {
	p.logicalReads.Store(0)
	p.physicalReads.Store(0)
	p.writes.Store(0)
	p.allocs.Store(0)
	p.frees.Store(0)
}

// ID returns the frame's page id.
func (f *Frame) ID() PageID { return f.id }

// Data returns the page bytes; mutate only while pinned and call MarkDirty.
func (f *Frame) Data() []byte { return f.data }

// MarkDirty records that the page bytes changed.
func (f *Frame) MarkDirty() { f.dirty = true }

// Release unpins the frame. Unpinned frames become eviction candidates.
func (f *Frame) Release() {
	sh := f.shard
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f.pins == 0 {
		panic(fmt.Sprintf("pagestore: over-release of page %d", f.id))
	}
	f.pins--
	if f.pins == 0 {
		el := sh.lru.PushFront(f.id)
		sh.lruPos[f.id] = el
	}
}
