package pagestore

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Stats accumulates the buffer pool's I/O counters. PhysicalReads is the
// number the paper's figures plot: page transfers from secondary storage,
// which with a per-query cold cache equals the number of distinct pages a
// query touches.
type Stats struct {
	LogicalReads  uint64 // Get calls
	PhysicalReads uint64 // pages fetched from the store (cache misses)
	Writes        uint64 // pages written back to the store
	Allocs        uint64 // pages allocated
	Frees         uint64 // pages freed
	Clones        uint64 // copy-on-write page clones (ClonePage calls)

	// ReadaheadBatches counts chain-readahead reads that admitted at least
	// one extra page beyond the demanded one; ReadaheadPages counts those
	// extra pages. Every admitted page is also a PhysicalRead, so the two
	// metrics stay directly comparable with the non-readahead path.
	ReadaheadBatches uint64
	ReadaheadPages   uint64

	// YoungEvictions and OldEvictions split evictions by the midpoint-LRU
	// region the victim came from. A leaf sweep over a working set larger
	// than the pool drains through the young region; OldEvictions staying
	// flat during sweeps is the scan-resistance signal.
	YoungEvictions uint64
	OldEvictions   uint64
}

// ReadCounter is a per-caller I/O counter threaded through GetTracked so a
// single query can account exactly for the page reads it caused, without
// the before/after delta on the shared pool counters that is racy when
// several queries run concurrently. The fields are atomics because one
// query may fan its tree sweeps across goroutines.
type ReadCounter struct {
	Logical  atomic.Uint64 // Get calls attributed to this counter
	Physical atomic.Uint64 // cache misses this counter's Gets triggered
}

// Pool is a buffer pool over a Store, split into power-of-two many shards
// keyed by a PageID hash. Each shard has its own mutex, frame table and
// eviction lists, so concurrent readers touching different pages rarely
// contend; the I/O counters are atomics shared by all shards. Frames are
// pinned while in use; unpinned dirty frames are written back on eviction
// or Flush.
//
// Eviction is a midpoint-insertion LRU (young/old sublists per shard): a
// page enters the young region on first use and is tenured into the old
// region only on a later pin spaced at least tenureAge distinct-page
// accesses after its first one, so neither a single long leaf sweep nor a
// tight re-pin loop can evict the hot inner nodes that every query
// re-touches. PoolOptions.PlainLRU restores the historical single-list
// order for comparison.
//
// Evicted frames (struct and page buffer alike) are recycled through a
// per-shard freelist, so a steady-state miss/evict cycle — the cold-sweep
// read path — allocates nothing. Recycling is what makes the view borrow
// discipline strict: a []byte view over a frame's buffer observes the
// *next* occupant's bytes once the frame is released and reused, which is
// why views must never outlive their frame's Release (machine-checked by
// the dualvet pinleak analyzer, and at runtime by the btree view guard).
type Pool struct {
	store  Store
	shards []*poolShard
	shift  uint // 32 - log2(len(shards)); hash>>shift indexes the shard

	// Leaf-chain link hints learned from swept pages, keyed by direction.
	// GetChainTracked batches along these exact links when known and only
	// falls back to contiguity speculation past the last learned link, so
	// readahead keeps paying after split churn scatters a chain across
	// non-adjacent ids. Advisory only: a stale hint costs one wasted
	// speculative read, never a wrong admission (admission still requires
	// chain confirmation from the demanded page's own links).
	hintMu    sync.Mutex
	hintsAsc  map[PageID]PageID //dualvet:guarded=hintMu
	hintsDesc map[PageID]PageID //dualvet:guarded=hintMu

	// MVCC snapshot bookkeeping (snapshot.go): reference counts per pinned
	// commit version and pages superseded by copy-on-write commits, held
	// back until the min-referenced-version watermark passes their death
	// version. Guarded by snapMu; snapMu never nests inside a shard lock.
	snapMu       sync.Mutex
	snapRefs     map[uint64]int  //dualvet:guarded=snapMu
	deferred     []deferredFrees //dualvet:guarded=snapMu
	reclaimFails atomic.Uint64
	// clones/deferredTotal/reclaimed are the write-path attribution
	// counters: pages cloned by ClonePage, pages ever handed to
	// DeferFrees, and deferred pages actually freed by watermark
	// reclamation. Clones happen only under the index's single-writer
	// commit lock, so a delta of CloneCount across a commit stage is
	// exact per-stage attribution.
	clones        atomic.Uint64
	deferredTotal atomic.Uint64
	reclaimed     atomic.Uint64

	logicalReads     atomic.Uint64
	physicalReads    atomic.Uint64
	writes           atomic.Uint64
	allocs           atomic.Uint64
	frees            atomic.Uint64
	readaheadBatches atomic.Uint64
	readaheadPages   atomic.Uint64
	youngEvictions   atomic.Uint64
	oldEvictions     atomic.Uint64
}

// maxChainHints bounds the per-direction hint maps; when full, the map is
// reset rather than grown (hints are advisory and re-learned in one sweep).
const maxChainHints = 1 << 15

// poolShard is one independently locked slice of the pool. Its eviction
// state is two intrusive LRU lists of resident frames: young holds pages
// seen once, old holds pages tenured by an age-spaced repeat pin. A frame
// stays in place while pinned and moves to the front of its list on
// release, so the steady-state pin/release cycle allocates nothing.
// Victims come from the first unpinned frame off the young tail, then the
// old tail; the old region is capped at oldCap frames, beyond which its
// tail is demoted back to young. oldCap == 0 selects the plain single-list
// LRU (everything stays young, no tenuring).
type poolShard struct {
	mu        sync.Mutex
	capacity  int
	oldCap    int
	tenureAge uint64
	frames    map[PageID]*Frame //dualvet:guarded=mu
	// young/old order most-recently released frames first.
	young frameList //dualvet:guarded=mu
	old   frameList //dualvet:guarded=mu

	// tick is the shard's access clock: it advances on each pin or fetch of
	// a page different from the immediately preceding one, so a tight
	// re-pin loop on one page cannot age that page. Tenure requires the
	// re-pin to arrive at least tenureAge ticks after the frame's first
	// access (InnoDB-style), which keeps both scans and busy loops out of
	// the old region.
	tick       uint64 //dualvet:guarded=mu
	lastPinned PageID //dualvet:guarded=mu

	// free recycles evicted frames (chained through lruNext) together with
	// their page buffers; bounded by capacity.
	free  *Frame //dualvet:guarded=mu
	freeN int    //dualvet:guarded=mu

	// versions seeds Frame.version across evictions: dropLocked saves the
	// frame's stamp here and the next fetch of the same id resumes from it,
	// so a page that is modified, evicted, and re-read never repeats a
	// version a stale decoded copy could still be keyed under (no ABA).
	versions map[PageID]uint64 //dualvet:guarded=mu
}

// Frame region tags for the midpoint LRU.
const (
	regionYoung = iota
	regionOld
)

// Frame is a pinned page in the buffer pool. Callers must Release it when
// done and MarkDirty after mutating Data. After Release the frame — and
// its Data buffer — may be recycled for a different page at any time, so
// no slice of Data may be retained past the Release.
type Frame struct {
	shard *poolShard
	id    PageID
	data  []byte

	// pins is written only under shard.mu but read lock-free by Pinned,
	// the runtime anchor of the view borrow guard.
	pins atomic.Int32

	lruPrev, lruNext *Frame // intrusive young/old list links; guarded by shard.mu
	region           uint8  // guarded by shard.mu
	prefetch         bool   // guarded by shard.mu; admitted by readahead, not yet demanded
	firstTick        uint64 // shard tick at first access; guarded by shard.mu

	// dirty and version are atomics because MarkDirty is called while
	// pinned without the shard lock, potentially concurrently with another
	// pinner of the same frame.
	dirty   atomic.Bool
	version atomic.Uint64
}

// frameList is an intrusive doubly linked list of frames: front is the
// most-recently released end, back the eviction end. Intrusive links keep
// the pin/release/evict cycle free of container allocations.
type frameList struct {
	head, tail *Frame
	n          int
}

func (l *frameList) pushFront(f *Frame) {
	f.lruPrev = nil
	f.lruNext = l.head
	if l.head != nil {
		l.head.lruPrev = f
	} else {
		l.tail = f
	}
	l.head = f
	l.n++
}

func (l *frameList) remove(f *Frame) {
	if f.lruPrev != nil {
		f.lruPrev.lruNext = f.lruNext
	} else {
		l.head = f.lruNext
	}
	if f.lruNext != nil {
		f.lruNext.lruPrev = f.lruPrev
	} else {
		l.tail = f.lruPrev
	}
	f.lruPrev, f.lruNext = nil, nil
	l.n--
}

func (l *frameList) moveToFront(f *Frame) {
	if l.head == f {
		return
	}
	l.remove(f)
	l.pushFront(f)
}

func (l *frameList) back() *Frame { return l.tail }
func (l *frameList) len() int     { return l.n }

// ErrPoolFull is returned when every frame of the page's shard is pinned
// and a new page is requested.
var ErrPoolFull = errors.New("pagestore: all buffer frames pinned")

// defaultTenureAge is the distinct-page access spacing a repeat pin needs
// before it tenures a young frame into the old region.
const defaultTenureAge = 8

// PoolOptions configures a buffer pool beyond the store and capacity.
type PoolOptions struct {
	// Capacity is the total frame budget, divided evenly over the shards
	// (minimum 8 frames per shard).
	Capacity int
	// Shards is rounded up to a power of two; ≤ 0 selects
	// nextPow2(GOMAXPROCS).
	Shards int
	// PlainLRU disables the midpoint young/old split and restores the
	// historical single-list LRU eviction order.
	PlainLRU bool
	// OldFraction is the fraction of each shard's capacity reserved for
	// the old (tenured) region, in (0,1); 0 selects the default 5/8.
	OldFraction float64
	// TenureAge is the minimum number of distinct-page accesses (per
	// shard) between a frame's first access and the repeat pin that
	// tenures it into the old region. 0 selects the default (8); a
	// negative value tenures on any repeat pin (the historical behavior,
	// vulnerable to tight re-pin loops).
	TenureAge int
}

// NewPool creates a single-shard buffer pool with the given frame capacity
// (minimum 8) — appropriate for single-threaded workloads and for tests
// that reason about one global eviction order.
func NewPool(store Store, capacity int) *Pool {
	return NewShardedPool(store, capacity, 1)
}

// NewShardedPool creates a buffer pool whose frames are distributed over
// nextPow2(shards) independently locked shards (shards ≤ 0 selects
// nextPow2(GOMAXPROCS)). The total capacity is divided evenly; every shard
// holds at least 8 frames, so the effective total can exceed capacity when
// capacity < 8·shards.
func NewShardedPool(store Store, capacity, shards int) *Pool {
	return NewPoolWithOptions(store, PoolOptions{Capacity: capacity, Shards: shards})
}

// NewPoolWithOptions creates a buffer pool with explicit eviction options.
func NewPoolWithOptions(store Store, opt PoolOptions) *Pool {
	shards := opt.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := nextPow2(shards)
	per := opt.Capacity / n
	if per < 8 {
		per = 8
	}
	frac := opt.OldFraction
	if frac <= 0 || frac >= 1 {
		frac = 5.0 / 8.0
	}
	oldCap := int(float64(per) * frac)
	if oldCap >= per {
		oldCap = per - 1
	}
	if oldCap < 1 {
		oldCap = 1
	}
	if opt.PlainLRU {
		oldCap = 0
	}
	age := uint64(defaultTenureAge)
	if opt.TenureAge > 0 {
		age = uint64(opt.TenureAge)
	} else if opt.TenureAge < 0 {
		age = 0
	}
	p := &Pool{
		store:     store,
		shards:    make([]*poolShard, n),
		shift:     32 - log2(n),
		hintsAsc:  make(map[PageID]PageID),
		hintsDesc: make(map[PageID]PageID),
		snapRefs:  make(map[uint64]int),
	}
	for i := range p.shards {
		p.shards[i] = &poolShard{
			capacity:  per,
			oldCap:    oldCap,
			tenureAge: age,
			frames:    make(map[PageID]*Frame),
			versions:  make(map[PageID]uint64),
		}
	}
	return p
}

// nextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// log2 of a power of two.
func log2(n int) uint {
	var s uint
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}

// shardOf routes a page id to its shard by Fibonacci hashing: the high
// bits of id·2654435761 index the shard table. For a single-shard pool the
// shift is 32, which Go defines to yield 0.
func (p *Pool) shardOf(id PageID) *poolShard {
	return p.shards[(uint32(id)*2654435761)>>p.shift]
}

// Shards returns the number of shards.
func (p *Pool) Shards() int { return len(p.shards) }

// Store returns the underlying page device.
func (p *Pool) Store() Store { return p.store }

// PageSize returns the page size in bytes.
func (p *Pool) PageSize() int { return p.store.PageSize() }

// Resident reports whether id currently holds a frame in the pool,
// without faulting it in, pinning it or touching the eviction lists. The
// answer is advisory — a concurrent Get or eviction can change it right
// after the shard unlocks — which suits its caller, the btree view-meta
// cache's eviction policy: a cached parse whose backing page has already
// left the pool is a cheap victim, and a stale answer only costs one
// re-parse.
func (p *Pool) Resident(id PageID) bool {
	if id == InvalidPage {
		return false
	}
	sh := p.shardOf(id)
	sh.mu.Lock()
	_, ok := sh.frames[id]
	sh.mu.Unlock()
	return ok
}

// Get pins the page with the given id, reading it from the store on a miss.
func (p *Pool) Get(id PageID) (*Frame, error) { return p.GetTracked(id, nil) }

// GetTracked is Get with per-caller accounting: when rc is non-nil, its
// Logical counter is bumped for the call and its Physical counter for a
// cache miss this call itself served. The attribution is exact — a miss is
// charged to exactly the caller whose Get read the page from the store —
// which makes per-query I/O numbers stable under concurrency.
func (p *Pool) GetTracked(id PageID, rc *ReadCounter) (*Frame, error) {
	if id == InvalidPage {
		return nil, errors.New("pagestore: Get(InvalidPage)")
	}
	p.logicalReads.Add(1)
	if rc != nil {
		rc.Logical.Add(1)
	}
	return p.getPinned(id, rc)
}

// getPinned pins id without logical-read accounting (the caller did that).
func (p *Pool) getPinned(id PageID, rc *ReadCounter) (*Frame, error) {
	sh := p.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f, ok := sh.frames[id]; ok {
		sh.pinLocked(f)
		return f, nil
	}
	if err := sh.ensureRoomLocked(p); err != nil {
		return nil, err
	}
	f := sh.takeFrameLocked(p.store.PageSize())
	if err := p.store.ReadPage(id, f.data); err != nil {
		sh.recycleLocked(f)
		return nil, err
	}
	p.physicalReads.Add(1)
	if rc != nil {
		rc.Physical.Add(1)
	}
	sh.installLocked(f, id, 1)
	return f, nil
}

// ChainNextFunc extracts the forward link from a raw page image during
// chain readahead, returning InvalidPage when the image is not a chain
// node or the chain ends there. It must not retain or mutate the page.
type ChainNextFunc func(page []byte) PageID

// NoteChainLink records that page id's successor in sweep direction dir
// (+1 ascending, −1 descending) is next — a sibling link observed in an
// already-decoded chain page. GetChainTracked batches future reads along
// these learned links instead of guessing contiguity, so readahead keeps
// batching after splits scatter a chain. Stale links are harmless: a
// mis-batched page fails chain confirmation and is simply not admitted.
func (p *Pool) NoteChainLink(id, next PageID, dir int) {
	if id == InvalidPage || next == InvalidPage || id == next || dir == 0 {
		return
	}
	hints := p.hintsAsc
	if dir < 0 {
		hints = p.hintsDesc
	}
	p.hintMu.Lock()
	if len(hints) >= maxChainHints {
		if _, ok := hints[id]; !ok {
			clear(hints)
		}
	}
	hints[id] = next
	p.hintMu.Unlock()
}

// chainIDs assembles the speculative batch for a chain read starting at
// id: first along learned links, then contiguously past the last known
// one. The result has no duplicates and always starts with id.
func (p *Pool) chainIDs(id PageID, lookahead, dir int) []PageID {
	ids := make([]PageID, 1, lookahead)
	ids[0] = id
	contains := func(q PageID) bool {
		for _, x := range ids {
			if x == q {
				return true
			}
		}
		return false
	}
	hints := p.hintsAsc
	if dir < 0 {
		hints = p.hintsDesc
	}
	p.hintMu.Lock()
	cur := id
	for len(ids) < lookahead {
		h, ok := hints[cur]
		if !ok || contains(h) {
			break
		}
		ids = append(ids, h)
		cur = h
	}
	p.hintMu.Unlock()
	for len(ids) < lookahead {
		q := ids[len(ids)-1]
		if dir > 0 {
			q++
		} else {
			if q <= 1 {
				break
			}
			q--
		}
		if contains(q) {
			break
		}
		ids = append(ids, q)
	}
	return ids
}

// GetChainTracked is GetTracked for sweeps along a linked page chain: on a
// miss it speculatively reads up to lookahead pages — along previously
// learned chain links where known (see NoteChainLink), contiguously in the
// sweep direction past them — with one vectored store read, then admits
// only the pages the chain itself confirms: it walks next() through the
// fetched images starting from the demanded page, and a true chain node's
// link always points at the next true chain node, so an unrelated page
// that merely sits at a guessed id is discarded unread. Confirmed links
// are fed back into the hint maps, so the first sweep over a churned chain
// teaches the batches for every later sweep in either direction.
//
// Every admitted page is counted as a PhysicalRead (charged to rc), which
// keeps per-query I/O totals for a full sweep identical to the
// single-page path; admitted extras enter the pool unpinned in the young
// region, flagged so their first demand pin does not tenure them.
// Readahead beyond the demanded page is best-effort: faults or a full
// shard only surface when the demanded page itself is affected.
func (p *Pool) GetChainTracked(id PageID, lookahead, dir int, next ChainNextFunc, rc *ReadCounter) (*Frame, error) {
	if lookahead <= 1 || next == nil || dir == 0 {
		return p.GetTracked(id, rc)
	}
	if id == InvalidPage {
		return nil, errors.New("pagestore: Get(InvalidPage)")
	}
	p.logicalReads.Add(1)
	if rc != nil {
		rc.Logical.Add(1)
	}
	sh := p.shardOf(id)
	sh.mu.Lock()
	if f, ok := sh.frames[id]; ok {
		sh.pinLocked(f)
		sh.mu.Unlock()
		return f, nil
	}
	sh.mu.Unlock()

	// Speculative batch read, without holding any shard lock across the
	// I/O.
	ids := p.chainIDs(id, lookahead, dir)
	ps := p.store.PageSize()
	raw := make([]byte, len(ids)*ps)
	bufs := make([][]byte, len(ids))
	for i := range bufs {
		bufs[i] = raw[i*ps : (i+1)*ps : (i+1)*ps]
	}
	n, err := p.store.ReadPages(ids, bufs)
	if n == 0 {
		if err != nil {
			return nil, fmt.Errorf("pagestore: readahead batch at page %d: %w", id, err)
		}
		// The demanded page is not readable as part of a batch (e.g. it
		// was freed); let the single-page path produce its usual error.
		return p.getPinned(id, rc)
	}

	// Walk the chain inside the fetched prefix. sel collects confirmed
	// batch positions in chain order, always starting with the demanded
	// page at position 0. The walk must strictly advance through the batch
	// (pos > k), which also rules out link cycles.
	pos := func(nid PageID, after int) int {
		for j := after + 1; j < n; j++ {
			if ids[j] == nid {
				return j
			}
		}
		return -1
	}
	sel := make([]int, 1, n)
	for k := 0; ; {
		nid := next(bufs[k])
		if nid == InvalidPage {
			break
		}
		d := pos(nid, k)
		if d < 0 {
			break
		}
		k = d
		sel = append(sel, k)
	}
	// Teach the hint maps every confirmed link, including the one past the
	// batch's end.
	for _, j := range sel {
		p.NoteChainLink(ids[j], next(bufs[j]), dir)
	}

	var out *Frame
	admitted := 0
	for _, j := range sel {
		pid := ids[j]
		shj := p.shardOf(pid)
		shj.mu.Lock()
		if f, ok := shj.frames[pid]; ok {
			// Raced with another reader that inserted the page first; its
			// copy is at least as fresh as ours.
			if j == 0 {
				shj.pinLocked(f)
				out = f
			}
			shj.mu.Unlock()
			continue
		}
		if roomErr := shj.ensureRoomLocked(p); roomErr != nil {
			shj.mu.Unlock()
			if j == 0 {
				return nil, roomErr
			}
			continue
		}
		pins := 0
		if j == 0 {
			pins = 1
		}
		f := shj.takeFrameLocked(ps)
		copy(f.data, bufs[j])
		shj.installLocked(f, pid, pins)
		f.prefetch = j != 0
		shj.mu.Unlock()
		p.physicalReads.Add(1)
		if rc != nil {
			rc.Physical.Add(1)
		}
		if j == 0 {
			out = f
		} else {
			admitted++
		}
	}
	if admitted > 0 {
		p.readaheadBatches.Add(1)
		p.readaheadPages.Add(uint64(admitted))
	}
	return out, nil
}

// takeFrameLocked pops a recycled frame off the shard's freelist — buffer
// and all — or allocates a fresh one. Callers hold sh.mu.
func (sh *poolShard) takeFrameLocked(pageSize int) *Frame {
	if f := sh.free; f != nil {
		sh.free = f.lruNext
		sh.freeN--
		f.lruNext = nil
		return f
	}
	return &Frame{shard: sh, data: make([]byte, pageSize)}
}

// recycleLocked pushes a frame (not in any list or map) onto the freelist,
// clearing its identity so nothing can mistake it for a live page. The
// freelist is bounded by the shard capacity; overflow is left to the GC.
func (sh *poolShard) recycleLocked(f *Frame) {
	if sh.freeN >= sh.capacity {
		return
	}
	f.id = 0
	f.pins.Store(0)
	f.region = regionYoung
	f.prefetch = false
	f.firstTick = 0
	f.dirty.Store(false)
	f.version.Store(0)
	f.lruPrev = nil
	f.lruNext = sh.free
	sh.free = f
	sh.freeN++
}

// installLocked registers a frame (fresh or recycled, its data already
// holding the page image) for id: version resumes from the shard's
// persisted map, the frame enters the front of the young list, and the
// shard's access clock advances. Callers hold sh.mu.
func (sh *poolShard) installLocked(f *Frame, id PageID, pins int) {
	sh.touchLocked(id)
	f.id = id
	f.pins.Store(int32(pins))
	f.region = regionYoung
	f.prefetch = false
	f.firstTick = sh.tick
	f.dirty.Store(false)
	f.version.Store(sh.versions[id])
	sh.young.pushFront(f)
	sh.frames[id] = f
}

// touchLocked advances the shard's access clock for an access to id; a
// repeat access to the immediately preceding page does not count.
func (sh *poolShard) touchLocked(id PageID) {
	if id != sh.lastPinned {
		sh.tick++
		sh.lastPinned = id
	}
}

// NewPage allocates a fresh zeroed page and returns it pinned and dirty.
func (p *Pool) NewPage() (*Frame, error) {
	id, err := p.store.Alloc()
	if err != nil {
		return nil, err
	}
	sh := p.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.ensureRoomLocked(p); err != nil {
		// Undo the allocation so the store does not leak the page.
		_ = p.store.Free(id)
		return nil, err
	}
	p.allocs.Add(1)
	f := sh.takeFrameLocked(p.store.PageSize())
	clear(f.data)
	sh.installLocked(f, id, 1)
	// A reused page id starts a new life: advance past any version a stale
	// decode of the previous occupant could be keyed under.
	v := sh.versions[id] + 1
	sh.versions[id] = v
	f.version.Store(v)
	f.dirty.Store(true)
	return f, nil
}

// FreePage removes the page from the pool and the store. The page must not
// be pinned.
func (p *Pool) FreePage(id PageID) error {
	sh := p.shardOf(id)
	sh.mu.Lock()
	if f, ok := sh.frames[id]; ok {
		if f.pins.Load() > 0 {
			sh.mu.Unlock()
			return fmt.Errorf("pagestore: freeing pinned page %d", id)
		}
		sh.dropLocked(f)
	}
	// Invalidate any decoded copy keyed under the page's last version.
	sh.versions[id]++
	sh.mu.Unlock()
	p.frees.Add(1)
	return p.store.Free(id)
}

// pinLocked pins an in-shard frame. The frame keeps its list position; a
// repeat pin tenures it into the old region only when spaced at least
// tenureAge distinct-page accesses after the frame's first one — except
// the first demand pin of a readahead page, which is the read the
// prefetch anticipated, not evidence of reuse.
func (sh *poolShard) pinLocked(f *Frame) {
	sh.touchLocked(f.id)
	f.pins.Add(1)
	if f.prefetch {
		f.prefetch = false
		f.firstTick = sh.tick
	} else if f.region == regionYoung && sh.oldCap > 0 && sh.tick-f.firstTick >= sh.tenureAge {
		f.region = regionOld
		sh.young.remove(f)
		sh.old.pushFront(f)
		sh.rebalanceLocked()
	}
}

// listFor returns the eviction list the frame belongs to when unpinned.
func (sh *poolShard) listFor(f *Frame) *frameList {
	if f.region == regionOld {
		return &sh.old
	}
	return &sh.young
}

// victimLocked returns the least-recently released unpinned frame of a
// list, or nil if every frame in it is pinned.
func (sh *poolShard) victimLocked(l *frameList) *Frame {
	for f := l.back(); f != nil; f = f.lruPrev {
		if f.pins.Load() == 0 {
			return f
		}
	}
	return nil
}

// ensureRoomLocked evicts one unpinned frame when the shard is at
// capacity: the young region's tail first, the old region's only when no
// young frame is evictable.
func (sh *poolShard) ensureRoomLocked(p *Pool) error {
	if len(sh.frames) < sh.capacity {
		return nil
	}
	f := sh.victimLocked(&sh.young)
	fromOld := false
	if f == nil {
		f = sh.victimLocked(&sh.old)
		fromOld = true
	}
	if f == nil {
		return ErrPoolFull
	}
	if f.dirty.Load() {
		if err := p.store.WritePage(f.id, f.data); err != nil {
			return err
		}
		p.writes.Add(1)
		f.dirty.Store(false)
	}
	sh.dropLocked(f)
	if fromOld {
		p.oldEvictions.Add(1)
	} else {
		p.youngEvictions.Add(1)
	}
	return nil
}

// dropLocked removes a resident frame from its list and the frame table,
// persists its version stamp so a later re-read of the id resumes where
// the frame left off, and recycles the frame through the freelist.
func (sh *poolShard) dropLocked(f *Frame) {
	sh.listFor(f).remove(f)
	sh.versions[f.id] = f.version.Load()
	delete(sh.frames, f.id)
	sh.recycleLocked(f)
}

// rebalanceLocked demotes the old region's tail back into the young
// region while the old region exceeds its cap, keeping a bounded share of
// the shard for tenured pages.
func (sh *poolShard) rebalanceLocked() {
	for sh.oldCap > 0 && sh.old.len() > sh.oldCap {
		f := sh.old.back()
		sh.old.remove(f)
		f.region = regionYoung
		sh.young.pushFront(f)
	}
}

// Flush writes back all dirty frames (pinned or not) without evicting them.
func (p *Pool) Flush() error {
	for _, sh := range p.shards {
		sh.mu.Lock()
		for id, f := range sh.frames {
			if f.dirty.Load() {
				if err := p.store.WritePage(id, f.data); err != nil {
					sh.mu.Unlock()
					return err
				}
				p.writes.Add(1)
				f.dirty.Store(false)
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// EvictAll flushes and drops every unpinned frame — a "cold cache" reset so
// the next query's PhysicalReads counts each touched page exactly once.
// Dropped frames land on the shard freelists, so the refill after an
// EvictAll reuses their buffers instead of allocating.
func (p *Pool) EvictAll() error {
	for _, sh := range p.shards {
		sh.mu.Lock()
		for id, f := range sh.frames {
			if f.pins.Load() > 0 {
				continue
			}
			if f.dirty.Load() {
				if err := p.store.WritePage(id, f.data); err != nil {
					sh.mu.Unlock()
					return err
				}
				p.writes.Add(1)
				f.dirty.Store(false)
			}
			sh.dropLocked(f)
		}
		sh.mu.Unlock()
	}
	return nil
}

// Stats returns a snapshot of the I/O counters. Under concurrent use the
// counters are updated atomically but the snapshot as a whole is not a
// consistent cut; per-query accounting should use GetTracked instead of
// deltas of this snapshot.
func (p *Pool) Stats() Stats {
	return Stats{
		LogicalReads:     p.logicalReads.Load(),
		PhysicalReads:    p.physicalReads.Load(),
		Writes:           p.writes.Load(),
		Allocs:           p.allocs.Load(),
		Frees:            p.frees.Load(),
		Clones:           p.clones.Load(),
		ReadaheadBatches: p.readaheadBatches.Load(),
		ReadaheadPages:   p.readaheadPages.Load(),
		YoungEvictions:   p.youngEvictions.Load(),
		OldEvictions:     p.oldEvictions.Load(),
	}
}

// Residency is a point-in-time census of the pool's frames — the gauge
// complement to the monotone Stats counters. Young/Old split the
// resident frames by midpoint-LRU region (with PlainLRU everything is
// young); Pinned counts frames currently held by a caller.
type Residency struct {
	Frames   int `json:"frames"`
	Young    int `json:"young"`
	Old      int `json:"old"`
	Pinned   int `json:"pinned"`
	Capacity int `json:"capacity"`
}

// Residency counts the resident frames, summing over shards under each
// shard's lock in turn. The census is per-shard consistent but not a
// single cut across shards — fine for gauges, not for invariants.
func (p *Pool) Residency() Residency {
	var r Residency
	for _, sh := range p.shards {
		sh.mu.Lock()
		r.Frames += len(sh.frames)
		r.Young += sh.young.len()
		r.Old += sh.old.len()
		for _, f := range sh.frames {
			if f.pins.Load() > 0 {
				r.Pinned++
			}
		}
		r.Capacity += sh.capacity
		sh.mu.Unlock()
	}
	return r
}

// ResetStats zeroes the I/O counters.
func (p *Pool) ResetStats() {
	p.logicalReads.Store(0)
	p.physicalReads.Store(0)
	p.writes.Store(0)
	p.allocs.Store(0)
	p.frees.Store(0)
	p.clones.Store(0)
	p.readaheadBatches.Store(0)
	p.readaheadPages.Store(0)
	p.youngEvictions.Store(0)
	p.oldEvictions.Store(0)
}

// ID returns the frame's page id.
func (f *Frame) ID() PageID { return f.id }

// Data returns the page bytes; mutate only while pinned and call MarkDirty.
// No slice of the returned buffer may outlive the frame's Release: the
// buffer is recycled for other pages once the frame is evicted.
func (f *Frame) Data() []byte { return f.data }

// Pinned reports whether the frame currently holds at least one pin. It
// reads the pin count without the shard lock, so the answer is advisory
// under concurrency — exactly what the btree view guard needs: a view
// whose frame reports Pinned()==false has certainly outlived its borrow.
func (f *Frame) Pinned() bool { return f.pins.Load() > 0 }

// MarkDirty records that the page bytes changed and advances the page's
// version stamp, invalidating any decoded copy keyed under the old stamp.
func (f *Frame) MarkDirty() {
	f.dirty.Store(true)
	f.version.Add(1)
}

// Version returns the page's current version stamp. The stamp changes on
// every MarkDirty and whenever the page id is freed or reallocated, and it
// never repeats across evictions, so (ID, Version) is a stable key for
// caching decoded page contents: serve a cached decode only while the
// pinned frame still reports the version it was decoded under.
func (f *Frame) Version() uint64 { return f.version.Load() }

// Release unpins the frame. Unpinned frames become eviction candidates,
// and any view over the frame's bytes dies with the pin.
func (f *Frame) Release() {
	sh := f.shard
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f.pins.Load() == 0 {
		panic(fmt.Sprintf("pagestore: over-release of page %d", f.id))
	}
	if f.pins.Add(-1) == 0 {
		sh.listFor(f).moveToFront(f)
	}
}
