package pagestore

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
)

func stores(t *testing.T, pageSize int) map[string]Store {
	t.Helper()
	fs, err := OpenFileStore(filepath.Join(t.TempDir(), "pages.db"), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return map[string]Store{
		"mem":  NewMemStore(pageSize),
		"file": fs,
	}
}

func TestStoreAllocReadWrite(t *testing.T) {
	for name, s := range stores(t, 128) {
		t.Run(name, func(t *testing.T) {
			id1, err := s.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			id2, err := s.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			if id1 == id2 || id1 == InvalidPage {
				t.Fatalf("ids %d %d", id1, id2)
			}
			buf := make([]byte, 128)
			for i := range buf {
				buf[i] = byte(i)
			}
			if err := s.WritePage(id1, buf); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 128)
			if err := s.ReadPage(id1, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, got) {
				t.Fatal("read != written")
			}
			// A fresh page must be zeroed.
			if err := s.ReadPage(id2, got); err != nil {
				t.Fatal(err)
			}
			for _, b := range got {
				if b != 0 {
					t.Fatal("fresh page not zeroed")
				}
			}
			if s.NumAllocated() != 2 {
				t.Fatalf("NumAllocated = %d", s.NumAllocated())
			}
		})
	}
}

func TestStoreFreeAndReuse(t *testing.T) {
	for name, s := range stores(t, 64) {
		t.Run(name, func(t *testing.T) {
			id, _ := s.Alloc()
			if err := s.Free(id); err != nil {
				t.Fatal(err)
			}
			if err := s.Free(id); err == nil {
				t.Fatal("double free must fail")
			}
			buf := make([]byte, 64)
			if err := s.ReadPage(id, buf); err == nil {
				t.Fatal("reading freed page must fail")
			}
			id2, _ := s.Alloc()
			if id2 != id {
				t.Fatalf("freed page not reused: %d vs %d", id2, id)
			}
			// Reused pages are zeroed.
			if err := s.ReadPage(id2, buf); err != nil {
				t.Fatal(err)
			}
			for _, b := range buf {
				if b != 0 {
					t.Fatal("reused page not zeroed")
				}
			}
		})
	}
}

func TestPoolBasicReadWrite(t *testing.T) {
	s := NewMemStore(64)
	p := NewPool(s, 16)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	copy(f.Data(), "hello")
	f.MarkDirty()
	f.Release()
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// Read through a different pool to force a physical read.
	p2 := NewPool(s, 16)
	f2, err := p2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(f2.Data()[:5]) != "hello" {
		t.Fatalf("data = %q", f2.Data()[:5])
	}
	f2.Release()
	if st := p2.Stats(); st.PhysicalReads != 1 || st.LogicalReads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolCacheHit(t *testing.T) {
	s := NewMemStore(64)
	p := NewPool(s, 16)
	f, _ := p.NewPage()
	id := f.ID()
	f.Release()
	p.ResetStats()
	for i := 0; i < 5; i++ {
		g, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		g.Release()
	}
	st := p.Stats()
	if st.LogicalReads != 5 {
		t.Fatalf("logical = %d", st.LogicalReads)
	}
	if st.PhysicalReads != 0 {
		t.Fatalf("physical = %d (page was already cached)", st.PhysicalReads)
	}
}

func TestPoolEvictionWritesBackDirty(t *testing.T) {
	s := NewMemStore(64)
	p := NewPool(s, 8) // minimum capacity
	f, _ := p.NewPage()
	id := f.ID()
	copy(f.Data(), "dirty")
	f.MarkDirty()
	f.Release()
	// Fill the pool to force eviction of the first page.
	for i := 0; i < 10; i++ {
		g, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		g.Release()
	}
	buf := make([]byte, 64)
	if err := s.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:5]) != "dirty" {
		t.Fatal("evicted dirty page not written back")
	}
}

func TestPoolAllPinned(t *testing.T) {
	s := NewMemStore(64)
	p := NewPool(s, 8)
	var frames []*Frame
	for i := 0; i < 8; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if _, err := p.NewPage(); err != ErrPoolFull {
		t.Fatalf("want ErrPoolFull, got %v", err)
	}
	frames[0].Release()
	if _, err := p.NewPage(); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestPoolEvictAllColdCache(t *testing.T) {
	s := NewMemStore(64)
	p := NewPool(s, 64)
	var ids []PageID
	for i := 0; i < 10; i++ {
		f, _ := p.NewPage()
		ids = append(ids, f.ID())
		f.Release()
	}
	if err := p.EvictAll(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	// Touch 5 distinct pages, some twice: PhysicalReads must be 5.
	for _, i := range []int{0, 1, 2, 2, 3, 4, 0} {
		f, err := p.Get(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	if st := p.Stats(); st.PhysicalReads != 5 {
		t.Fatalf("physical reads = %d, want 5", st.PhysicalReads)
	}
}

func TestPoolFreePage(t *testing.T) {
	s := NewMemStore(64)
	p := NewPool(s, 16)
	f, _ := p.NewPage()
	id := f.ID()
	if err := p.FreePage(id); err == nil {
		t.Fatal("freeing a pinned page must fail")
	}
	f.Release()
	if err := p.FreePage(id); err != nil {
		t.Fatal(err)
	}
	if s.NumAllocated() != 0 {
		t.Fatalf("allocated = %d", s.NumAllocated())
	}
}

func TestPoolRandomizedAgainstDirectStore(t *testing.T) {
	// Property: reading through a (small, eviction-heavy) pool always
	// returns the last bytes written through the pool.
	s := NewMemStore(32)
	p := NewPool(s, 8)
	rng := rand.New(rand.NewSource(77))
	shadow := make(map[PageID][]byte)
	var ids []PageID
	for i := 0; i < 20; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID())
		shadow[f.ID()] = make([]byte, 32)
		f.Release()
	}
	for step := 0; step < 2000; step++ {
		id := ids[rng.Intn(len(ids))]
		f, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 {
			b := byte(rng.Intn(256))
			off := rng.Intn(32)
			f.Data()[off] = b
			shadow[id][off] = b
			f.MarkDirty()
		} else if !bytes.Equal(f.Data(), shadow[id]) {
			t.Fatalf("step %d: page %d diverged", step, id)
		}
		f.Release()
	}
}

func TestFrameOverReleasePanics(t *testing.T) {
	s := NewMemStore(64)
	p := NewPool(s, 8)
	f, _ := p.NewPage()
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("over-release must panic")
		}
	}()
	f.Release()
}
