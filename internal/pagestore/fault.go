package pagestore

import (
	"errors"
	"sync"
)

// ErrInjected is the error produced by a FaultStore's tripped operations.
var ErrInjected = errors.New("pagestore: injected fault")

// FaultStore wraps a Store and fails operations on demand — a test aid for
// verifying that the structures above the pager surface I/O errors instead
// of corrupting themselves or panicking.
//
// Counters are decremented on each matching operation; the operation fails
// when its counter hits zero (so FailReadAfter(3) lets two reads succeed
// and fails the third). Zero-valued counters never trip.
type FaultStore struct {
	mu    sync.Mutex
	inner Store

	readAfter  int
	writeAfter int
	allocAfter int
}

// NewFaultStore wraps inner.
func NewFaultStore(inner Store) *FaultStore { return &FaultStore{inner: inner} }

// FailReadAfter arms the read fault: the n-th subsequent read fails.
func (s *FaultStore) FailReadAfter(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readAfter = n
}

// FailWriteAfter arms the write fault.
func (s *FaultStore) FailWriteAfter(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeAfter = n
}

// FailAllocAfter arms the allocation fault.
func (s *FaultStore) FailAllocAfter(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.allocAfter = n
}

// Disarm clears all pending faults.
func (s *FaultStore) Disarm() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readAfter, s.writeAfter, s.allocAfter = 0, 0, 0
}

func trip(counter *int) bool {
	if *counter == 0 {
		return false
	}
	*counter--
	return *counter == 0
}

// PageSize returns the inner page size.
func (s *FaultStore) PageSize() int { return s.inner.PageSize() }

// Alloc forwards to the inner store unless the alloc fault trips.
func (s *FaultStore) Alloc() (PageID, error) {
	s.mu.Lock()
	tripped := trip(&s.allocAfter)
	s.mu.Unlock()
	if tripped {
		return InvalidPage, ErrInjected
	}
	return s.inner.Alloc()
}

// Free forwards to the inner store.
func (s *FaultStore) Free(id PageID) error { return s.inner.Free(id) }

// ReadPage forwards unless the read fault trips.
func (s *FaultStore) ReadPage(id PageID, buf []byte) error {
	s.mu.Lock()
	tripped := trip(&s.readAfter)
	s.mu.Unlock()
	if tripped {
		return ErrInjected
	}
	return s.inner.ReadPage(id, buf)
}

// ReadPages forwards to the inner store with per-page fault accounting:
// each page in the batch consumes one tick of the read-fault counter, and
// a trip truncates the batch at the failing page, returning the pages
// read before it together with ErrInjected.
func (s *FaultStore) ReadPages(ids []PageID, bufs [][]byte) (int, error) {
	s.mu.Lock()
	allowed := len(ids)
	tripped := false
	for i := range ids {
		if trip(&s.readAfter) {
			allowed, tripped = i, true
			break
		}
	}
	s.mu.Unlock()
	n, err := s.inner.ReadPages(ids[:allowed], bufs[:allowed])
	if err != nil {
		return n, err
	}
	if tripped {
		return n, ErrInjected
	}
	return n, nil
}

// WritePage forwards unless the write fault trips.
func (s *FaultStore) WritePage(id PageID, buf []byte) error {
	s.mu.Lock()
	tripped := trip(&s.writeAfter)
	s.mu.Unlock()
	if tripped {
		return ErrInjected
	}
	return s.inner.WritePage(id, buf)
}

// NumAllocated forwards to the inner store.
func (s *FaultStore) NumAllocated() int { return s.inner.NumAllocated() }

// Close forwards to the inner store.
func (s *FaultStore) Close() error { return s.inner.Close() }
