package pagestore

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func TestShardedPoolShardCount(t *testing.T) {
	s := NewMemStore(64)
	for _, tc := range []struct{ req, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		if got := NewShardedPool(s, 64, tc.req).Shards(); got != tc.want {
			t.Errorf("shards(%d) = %d, want %d", tc.req, got, tc.want)
		}
	}
	if got := NewPool(s, 64).Shards(); got != 1 {
		t.Errorf("NewPool shards = %d, want 1", got)
	}
	if got := NewShardedPool(s, 64, 0).Shards(); got < 1 {
		t.Errorf("auto shards = %d", got)
	}
}

func TestShardedPoolRoutesConsistently(t *testing.T) {
	// Every operation on a page must land on the same shard regardless of
	// entry point: write through NewPage, read back through Get, drop via
	// EvictAll, free via FreePage.
	s := NewMemStore(32)
	p := NewShardedPool(s, 256, 8)
	shadow := make(map[PageID]byte)
	for i := 0; i < 200; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		b := byte(i)
		f.Data()[0] = b
		f.MarkDirty()
		shadow[f.ID()] = b
		f.Release()
	}
	if err := p.EvictAll(); err != nil {
		t.Fatal(err)
	}
	for id, b := range shadow {
		f, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data()[0] != b {
			t.Fatalf("page %d: got %d, want %d", id, f.Data()[0], b)
		}
		f.Release()
	}
	for id := range shadow {
		// Frames are unpinned again; freeing must succeed on every shard.
		if err := p.FreePage(id); err != nil {
			t.Fatalf("FreePage(%d): %v", id, err)
		}
	}
	if s.NumAllocated() != 0 {
		t.Fatalf("allocated = %d after freeing all", s.NumAllocated())
	}
}

func TestShardedPoolStatsAggregate(t *testing.T) {
	s := NewMemStore(64)
	p := NewShardedPool(s, 1024, 4)
	var ids []PageID
	for i := 0; i < 50; i++ {
		f, _ := p.NewPage()
		ids = append(ids, f.ID())
		f.Release()
	}
	if err := p.EvictAll(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	for _, id := range ids {
		f, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	st := p.Stats()
	if st.LogicalReads != 50 || st.PhysicalReads != 50 {
		t.Fatalf("stats after cold pass = %+v, want 50/50", st)
	}
}

func TestGetTrackedExactAttribution(t *testing.T) {
	// Two trackers interleave Gets over a cold pool: each miss must be
	// charged to exactly the tracker that triggered it, and the sum of the
	// per-tracker Physical counts must equal the pool's PhysicalReads.
	s := NewMemStore(64)
	p := NewShardedPool(s, 1024, 4)
	var ids []PageID
	for i := 0; i < 40; i++ {
		f, _ := p.NewPage()
		ids = append(ids, f.ID())
		f.Release()
	}
	if err := p.EvictAll(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	var a, b ReadCounter
	for i, id := range ids {
		rc := &a
		if i%2 == 1 {
			rc = &b
		}
		f, err := p.GetTracked(id, rc)
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	// Re-read everything through tracker a: all hits, no new misses.
	for _, id := range ids {
		f, err := p.GetTracked(id, &a)
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	if got := a.Physical.Load() + b.Physical.Load(); got != p.Stats().PhysicalReads {
		t.Fatalf("tracked misses %d != pool misses %d", got, p.Stats().PhysicalReads)
	}
	if a.Physical.Load() != 20 || b.Physical.Load() != 20 {
		t.Fatalf("misses a=%d b=%d, want 20 each", a.Physical.Load(), b.Physical.Load())
	}
	if a.Logical.Load() != 60 || b.Logical.Load() != 20 {
		t.Fatalf("logical a=%d b=%d, want 60/20", a.Logical.Load(), b.Logical.Load())
	}
}

func TestShardedPoolConcurrentReaders(t *testing.T) {
	// Hammer a multi-shard pool from many goroutines with mixed reads and
	// writes to disjoint byte ranges; run under -race in CI. Each goroutine
	// owns offset g, so concurrent mutation of one page is well-defined.
	s := NewMemStore(64)
	p := NewShardedPool(s, 64, 4) // small: forces eviction traffic
	var ids []PageID
	for i := 0; i < 128; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID())
		f.Release()
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			rc := &ReadCounter{}
			for step := 0; step < 2000; step++ {
				id := ids[rng.Intn(len(ids))]
				f, err := p.GetTracked(id, rc)
				if err != nil {
					errc <- err
					return
				}
				if rng.Intn(4) == 0 {
					f.Data()[g] = byte(step)
					f.MarkDirty()
				}
				f.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// Every page must still read back through the store without error.
	buf := make([]byte, 64)
	for _, id := range ids {
		if err := s.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestShardedPoolRandomizedAgainstShadow(t *testing.T) {
	// The sharded analogue of TestPoolRandomizedAgainstDirectStore: an
	// eviction-heavy 4-shard pool must always return the last written bytes.
	s := NewMemStore(32)
	p := NewShardedPool(s, 32, 4)
	rng := rand.New(rand.NewSource(99))
	shadow := make(map[PageID][]byte)
	var ids []PageID
	for i := 0; i < 60; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID())
		shadow[f.ID()] = make([]byte, 32)
		f.Release()
	}
	for step := 0; step < 4000; step++ {
		id := ids[rng.Intn(len(ids))]
		f, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 {
			b := byte(rng.Intn(256))
			off := rng.Intn(32)
			f.Data()[off] = b
			shadow[id][off] = b
			f.MarkDirty()
		} else if !bytes.Equal(f.Data(), shadow[id]) {
			t.Fatalf("step %d: page %d diverged", step, id)
		}
		f.Release()
	}
}
