package constraint

import (
	"math"
	"strings"
	"testing"

	"dualcdb/internal/geom"
)

func TestParseSimple(t *testing.T) {
	cons, err := ParseConstraints("x >= 0 && y >= 0 && x + y <= 4", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cons) != 3 {
		t.Fatalf("got %d constraints", len(cons))
	}
	// x ≥ 0 → A=(1,0), C=0, GE.
	if cons[0].A[0] != 1 || cons[0].A[1] != 0 || cons[0].C != 0 || cons[0].Op != geom.GE {
		t.Errorf("cons[0] = %v", cons[0])
	}
	if cons[2].A[0] != 1 || cons[2].A[1] != 1 || cons[2].C != -4 || cons[2].Op != geom.LE {
		t.Errorf("cons[2] = %v", cons[2])
	}
}

func TestParseCoefficientsAndStar(t *testing.T) {
	for _, s := range []string{"3x - 2y <= 6", "3*x - 2*y <= 6", "3x-2y<=6"} {
		cons, err := ParseConstraints(s, 2)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		h := cons[0]
		if h.A[0] != 3 || h.A[1] != -2 || h.C != -6 || h.Op != geom.LE {
			t.Errorf("%q → %v", s, h)
		}
	}
}

func TestParseRHSExpressions(t *testing.T) {
	// y >= 2x + 1  ⇔  −2x + y − 1 ≥ 0.
	cons, err := ParseConstraints("y >= 2x + 1", 2)
	if err != nil {
		t.Fatal(err)
	}
	h := cons[0]
	if h.A[0] != -2 || h.A[1] != 1 || h.C != -1 || h.Op != geom.GE {
		t.Errorf("y >= 2x+1 → %v", h)
	}
}

func TestParseEquality(t *testing.T) {
	cons, err := ParseConstraints("y = 3", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cons) != 2 {
		t.Fatalf("equality must expand to 2 constraints, got %d", len(cons))
	}
	if cons[0].Op == cons[1].Op {
		t.Error("expanded pair must have opposite operators")
	}
}

func TestParseStrictAsClosed(t *testing.T) {
	cons, err := ParseConstraints("x < 5 && y > 1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if cons[0].Op != geom.LE || cons[1].Op != geom.GE {
		t.Errorf("strict operators must map to closed: %v", cons)
	}
}

func TestParseSeparators(t *testing.T) {
	for _, s := range []string{"x >= 0, y >= 0", "x >= 0 && y >= 0", "x >= 0 and y >= 0"} {
		cons, err := ParseConstraints(s, 2)
		if err != nil || len(cons) != 2 {
			t.Errorf("%q: %v, %v", s, cons, err)
		}
	}
}

func TestParseNumericVariables(t *testing.T) {
	cons, err := ParseConstraints("x1 + 2x2 - x3 <= 10", 3)
	if err != nil {
		t.Fatal(err)
	}
	h := cons[0]
	if h.A[0] != 1 || h.A[1] != 2 || h.A[2] != -1 || h.C != -10 {
		t.Errorf("parsed %v", h)
	}
}

func TestParseUnaryMinusAndConstants(t *testing.T) {
	cons, err := ParseConstraints("-x - 2 >= -y + 1", 2)
	if err != nil {
		t.Fatal(err)
	}
	h := cons[0] // −x −2 − (−y + 1) = −x + y − 3 ≥ 0
	if h.A[0] != -1 || h.A[1] != 1 || h.C != -3 || h.Op != geom.GE {
		t.Errorf("parsed %v", h)
	}
}

func TestParseScientificNotation(t *testing.T) {
	cons, err := ParseConstraints("1.5e2x <= 3e-1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if cons[0].A[0] != 150 || math.Abs(cons[0].C-(-0.3)) > 1e-12 {
		t.Errorf("parsed %v", cons[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",             // no constraint
		"x + 1",        // no comparison
		"x >=",         // missing RHS
		"q >= 0",       // unknown variable
		"x3 >= 0",      // variable outside dimension
		"x >= 0 &",     // stray ampersand
		"x ? 0",        // bad operator char
		"x >= 0 y<=1",  // missing separator
		"* x >= 0",     // orphan star
		"x + + y >= 0", // double operator
	}
	for _, s := range bad {
		if _, err := ParseConstraints(s, 2); err == nil {
			t.Errorf("ParseConstraints(%q) should fail", s)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	inputs := []string{
		"x >= 0 && y >= 0 && x + y <= 4",
		"3x - 2y <= 6",
		"y >= 2x + 1",
		"-x + 0.5y >= -2.25",
	}
	for _, s := range inputs {
		cons, err := ParseConstraints(s, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range cons {
			text := FormatConstraint(h)
			back, err := ParseConstraints(text, 2)
			if err != nil {
				t.Fatalf("reparse %q: %v", text, err)
			}
			g, w := back[0], h
			if math.Abs(g.A[0]-w.A[0]) > 1e-12 || math.Abs(g.A[1]-w.A[1]) > 1e-12 ||
				math.Abs(g.C-w.C) > 1e-12 || g.Op != w.Op {
				t.Errorf("round trip %q → %q → %v, want %v", s, text, g, w)
			}
		}
	}
}

func TestTupleStringParseable(t *testing.T) {
	tp := mustTuple(t, "x >= 0 && y >= 0 && x + y <= 4")
	s := tp.String()
	if !strings.Contains(s, "&&") {
		t.Fatalf("String() = %q", s)
	}
	back, err := ParseTuple(s, 2)
	if err != nil {
		t.Fatalf("reparse %q: %v", s, err)
	}
	if len(back.Constraints()) != len(tp.Constraints()) {
		t.Fatal("round trip lost constraints")
	}
}

func TestVarName(t *testing.T) {
	if varName(0, 2) != "x" || varName(1, 2) != "y" {
		t.Error("2-D names")
	}
	if varName(0, 5) != "x1" || varName(4, 5) != "x5" {
		t.Error("high-dimension names")
	}
}
