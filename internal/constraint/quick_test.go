package constraint

import (
	"math"
	"testing"
	"testing/quick"

	"dualcdb/internal/geom"
)

// TestQuickFormatParseRoundTrip: formatting any constraint and reparsing
// it yields the same half-plane (coefficient-exact for representable
// decimals, point-set-equal in general).
func TestQuickFormatParseRoundTrip(t *testing.T) {
	f := func(aRaw, bRaw, cRaw int16, le bool) bool {
		a := float64(aRaw) / 16
		b := float64(bRaw) / 16
		c := float64(cRaw) / 16
		if a == 0 && b == 0 {
			return true // trivial constraints format as "0 op c"
		}
		op := geom.GE
		if le {
			op = geom.LE
		}
		h := geom.HalfPlane2(a, b, c, op)
		text := FormatConstraint(h)
		back, err := ParseConstraints(text, 2)
		if err != nil || len(back) != 1 {
			t.Logf("reparse %q: %v", text, err)
			return false
		}
		g := back[0]
		return math.Abs(g.A[0]-a) < 1e-9 && math.Abs(g.A[1]-b) < 1e-9 &&
			math.Abs(g.C-c) < 1e-9 && g.Op == op
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickPropositon22Consistency: for boxes, ALL ⇒ EXIST and the four
// Proposition 2.2 comparisons are mutually consistent under operator
// negation: ALL(q(≥)) and EXIST(¬q) = EXIST(q(≤)) partition behaviours
// around the BOT value.
func TestQuickProposition22Consistency(t *testing.T) {
	f := func(cxRaw, cyRaw int16, side uint8, aRaw, bRaw int16) bool {
		cx, cy := float64(cxRaw)/64, float64(cyRaw)/64
		s := float64(side%32)/4 + 0.25
		tp := boxTuple(cx, cy, s)
		a := float64(aRaw) / 128
		b := float64(bRaw) / 32

		allGE, err1 := Query2(ALL, a, b, geom.GE).Matches(tp)
		existGE, err2 := Query2(EXIST, a, b, geom.GE).Matches(tp)
		allLE, err3 := Query2(ALL, a, b, geom.LE).Matches(tp)
		existLE, err4 := Query2(EXIST, a, b, geom.LE).Matches(tp)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		// Containment implies intersection.
		if allGE && !existGE {
			return false
		}
		if allLE && !existLE {
			return false
		}
		// A bounded tuple cannot be contained in both closed half-planes
		// unless it is degenerate on the boundary line.
		if allGE && allLE {
			ext, _ := tp.Extension()
			if ext.Top([]float64{a})-ext.Bot([]float64{a}) > 1e-6 {
				return false
			}
		}
		// Every tuple intersects at least one side of any line.
		return existGE || existLE
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

func boxTuple(cx, cy, half float64) *Tuple {
	t, err := NewTuple(2, []geom.HalfSpace{
		geom.HalfPlane2(1, 0, -(cx - half), geom.GE),
		geom.HalfPlane2(1, 0, -(cx + half), geom.LE),
		geom.HalfPlane2(0, 1, -(cy - half), geom.GE),
		geom.HalfPlane2(0, 1, -(cy + half), geom.LE),
	})
	if err != nil {
		panic(err)
	}
	return t
}
