package constraint

import (
	"math"
	"testing"

	"dualcdb/internal/geom"
)

func mustTuple(t *testing.T, s string) *Tuple {
	t.Helper()
	tp, err := ParseTuple(s, 2)
	if err != nil {
		t.Fatalf("ParseTuple(%q): %v", s, err)
	}
	return tp
}

func TestTupleExtensionTriangle(t *testing.T) {
	tp := mustTuple(t, "x >= 0 && y >= 0 && x + y <= 4")
	ext, err := tp.Extension()
	if err != nil {
		t.Fatal(err)
	}
	if !tp.IsSatisfiable() || !tp.IsBounded() {
		t.Fatal("triangle must be satisfiable and bounded")
	}
	if len(ext.Verts) != 3 {
		t.Fatalf("verts = %v", ext.Verts)
	}
}

func TestTupleUnsatisfiable(t *testing.T) {
	tp := mustTuple(t, "x >= 1 && x <= 0")
	if tp.IsSatisfiable() {
		t.Fatal("x ≥ 1 ∧ x ≤ 0 must be unsatisfiable")
	}
}

func TestTupleUnbounded(t *testing.T) {
	tp := mustTuple(t, "x >= 2 && y >= 3")
	if !tp.IsSatisfiable() || tp.IsBounded() {
		t.Fatal("quadrant corner must be satisfiable and unbounded")
	}
	// The example from the paper's introduction: x ≤ 2 ∧ y ≥ 3 is infinite.
	tp2 := mustTuple(t, "x <= 2 && y >= 3")
	if tp2.IsBounded() {
		t.Fatal("x ≤ 2 ∧ y ≥ 3 must be infinite")
	}
}

func TestTupleTopBot(t *testing.T) {
	tp := mustTuple(t, "x >= 0 && y >= 0 && x + y <= 4")
	top, err := tp.Top([]float64{0})
	if err != nil || math.Abs(top-4) > 1e-9 {
		t.Fatalf("Top(0) = %v, %v; want 4", top, err)
	}
	bot, err := tp.Bot([]float64{0})
	if err != nil || math.Abs(bot) > 1e-9 {
		t.Fatalf("Bot(0) = %v, %v; want 0", bot, err)
	}
}

func TestTupleEnvelopesMatchDirect(t *testing.T) {
	tp := mustTuple(t, "x >= 1 && y >= -1 && x + y <= 5 && y <= 3")
	topEnv, botEnv := tp.TopEnv(), tp.BotEnv()
	for _, a := range []float64{-2, -0.5, 0, 0.7, 3} {
		dt, _ := tp.Top([]float64{a})
		db, _ := tp.Bot([]float64{a})
		if math.Abs(topEnv.Eval(a)-dt) > 1e-9 {
			t.Errorf("TopEnv(%v) = %v, want %v", a, topEnv.Eval(a), dt)
		}
		if math.Abs(botEnv.Eval(a)-db) > 1e-9 {
			t.Errorf("BotEnv(%v) = %v, want %v", a, botEnv.Eval(a), db)
		}
	}
}

func TestRelationCRUD(t *testing.T) {
	r := NewRelation(2)
	t1 := mustTuple(t, "x >= 0 && x <= 1 && y >= 0 && y <= 1")
	t2 := mustTuple(t, "x >= 2 && x <= 3 && y >= 2 && y <= 3")
	id1, err := r.Insert(t1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := r.Insert(t2)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("ids must be distinct")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	got, err := r.Get(id1)
	if err != nil || got != t1 {
		t.Fatalf("Get(%d) = %v, %v", id1, got, err)
	}
	if err := r.Delete(id1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(id1); err != ErrNotFound {
		t.Fatalf("Get after delete: %v", err)
	}
	if err := r.Delete(id1); err != ErrNotFound {
		t.Fatalf("double delete: %v", err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len after delete = %d", r.Len())
	}
	// Reinserting an owned tuple must fail.
	if _, err := r.Insert(t2); err == nil {
		t.Fatal("reinserting an owned tuple must fail")
	}
}

func TestRelationDimensionMismatch(t *testing.T) {
	r := NewRelation(3)
	t1 := mustTuple(t, "x >= 0")
	if _, err := r.Insert(t1); err == nil {
		t.Fatal("dimension mismatch must be rejected")
	}
}

func TestRelationScanOrder(t *testing.T) {
	r := NewRelation(2)
	var want []TupleID
	for i := 0; i < 5; i++ {
		id, _ := r.Insert(mustTuple(t, "x >= 0"))
		want = append(want, id)
	}
	var got []TupleID
	r.Scan(func(tp *Tuple) bool {
		got = append(got, tp.ID())
		return true
	})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	r.Scan(func(*Tuple) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestFromPolyhedron(t *testing.T) {
	p, err := geom.FromVertices([]geom.Point{{0, 0}, {1, 0}, {0, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tp := FromPolyhedron(p)
	if !tp.IsSatisfiable() || !tp.IsBounded() {
		t.Fatal("triangle from polyhedron")
	}
	ok, err := Query2(EXIST, 0, 0.5, geom.GE).Matches(tp)
	if err != nil || !ok {
		t.Fatalf("EXIST(y ≥ 0.5) should match: %v %v", ok, err)
	}
}
