// Package constraint implements the linear-constraint database model of
// Section 2 of the paper: generalized tuples (conjunctions of linear
// constraints over d real variables), generalized relations, a textual
// constraint syntax, and the exact ALL/EXIST selection predicates of
// Proposition 2.2 that serve both as ground truth for tests and as the
// refinement step of the approximate index techniques.
package constraint

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"dualcdb/internal/geom"
)

// TupleID identifies a generalized tuple within a relation.
type TupleID uint32

// Tuple is a generalized tuple: the conjunction of its linear constraints.
// Its extension — the set of solution points — is a convex polyhedron,
// possibly unbounded or empty.
//
// A Tuple caches its extension and (in E²) its TOP/BOT dual envelopes; it
// is immutable after creation and safe for concurrent use.
type Tuple struct {
	id   TupleID
	dim  int
	cons []geom.HalfSpace

	once sync.Once
	ext  geom.Polyhedron
	err  error

	envOnce sync.Once
	topEnv  geom.Envelope
	botEnv  geom.Envelope
}

// NewTuple builds a generalized tuple in E^dim from the given constraints.
// The constraint slice is copied. Equality constraints should already be
// normalized into inequality pairs (the parser does this).
func NewTuple(dim int, cons []geom.HalfSpace) (*Tuple, error) {
	if dim < 1 {
		return nil, fmt.Errorf("constraint: invalid dimension %d", dim)
	}
	for _, h := range cons {
		if h.Dim() != dim {
			return nil, fmt.Errorf("constraint: constraint %v has dimension %d, want %d", h, h.Dim(), dim)
		}
	}
	return &Tuple{dim: dim, cons: append([]geom.HalfSpace(nil), cons...)}, nil
}

// FromPolyhedron wraps an existing polyhedron as a tuple. The polyhedron
// should carry an H-representation if exact predicates are needed.
func FromPolyhedron(p geom.Polyhedron) *Tuple {
	t := &Tuple{dim: p.Dim(), cons: append([]geom.HalfSpace(nil), p.HS...)}
	t.once.Do(func() {}) // mark resolved
	t.ext = p
	return t
}

// ID returns the tuple's identifier within its relation (0 before insertion).
func (t *Tuple) ID() TupleID { return t.id }

// Dim returns the dimension of the tuple's variable space.
func (t *Tuple) Dim() int { return t.dim }

// Constraints returns the defining constraints (not to be modified).
func (t *Tuple) Constraints() []geom.HalfSpace { return t.cons }

// Extension returns the tuple's extension as a polyhedron in V- and
// H-representation. The computation runs once and is cached.
func (t *Tuple) Extension() (geom.Polyhedron, error) {
	t.once.Do(func() {
		t.ext, t.err = geom.FromHalfSpaces(t.cons, t.dim)
	})
	return t.ext, t.err
}

// IsSatisfiable reports whether the tuple's extension is non-empty.
func (t *Tuple) IsSatisfiable() bool {
	ext, err := t.Extension()
	return err == nil && !ext.IsEmpty()
}

// IsBounded reports whether the tuple's extension is bounded (a finite
// object in the paper's terminology).
func (t *Tuple) IsBounded() bool {
	ext, err := t.Extension()
	return err == nil && ext.IsBounded()
}

// Top evaluates TOP^P at the query slope vector (length dim−1).
func (t *Tuple) Top(slope []float64) (float64, error) {
	ext, err := t.Extension()
	if err != nil {
		return 0, err
	}
	return ext.Top(slope), nil
}

// Bot evaluates BOT^P at the query slope vector (length dim−1).
func (t *Tuple) Bot(slope []float64) (float64, error) {
	ext, err := t.Extension()
	if err != nil {
		return 0, err
	}
	return ext.Bot(slope), nil
}

// TopEnv returns the exact TOP^P envelope of a 2-D tuple as a function of
// the query slope. It panics for dim ≠ 2.
func (t *Tuple) TopEnv() geom.Envelope {
	t.ensureEnvelopes()
	return t.topEnv
}

// BotEnv returns the exact BOT^P envelope of a 2-D tuple.
func (t *Tuple) BotEnv() geom.Envelope {
	t.ensureEnvelopes()
	return t.botEnv
}

func (t *Tuple) ensureEnvelopes() {
	if t.dim != 2 {
		panic("constraint: TOP/BOT envelopes are defined for 2-D tuples only")
	}
	t.envOnce.Do(func() {
		ext, err := t.Extension()
		if err != nil {
			ext = geom.EmptyPolyhedron(2)
		}
		t.topEnv = geom.TopEnvelope2(ext)
		t.botEnv = geom.BotEnvelope2(ext)
	})
}

// String renders the tuple in the textual constraint syntax.
func (t *Tuple) String() string {
	if len(t.cons) == 0 {
		return "true"
	}
	parts := make([]string, len(t.cons))
	for i, h := range t.cons {
		parts[i] = formatConstraint(h)
	}
	return strings.Join(parts, " && ")
}

// ErrNotFound is returned when a tuple id is absent from a relation.
var ErrNotFound = errors.New("constraint: tuple not found")

// Relation is a generalized relation: a mutable set of generalized tuples
// sharing one variable space. Tuple IDs are assigned on insertion and never
// reused.
type Relation struct {
	dim    int
	nextID TupleID
	tuples map[TupleID]*Tuple
	order  []TupleID // insertion order, for deterministic scans
}

// NewRelation creates an empty relation over E^dim.
func NewRelation(dim int) *Relation {
	return &Relation{dim: dim, nextID: 1, tuples: make(map[TupleID]*Tuple)}
}

// Dim returns the dimension of the relation's variable space.
func (r *Relation) Dim() int { return r.dim }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Insert adds a tuple and assigns it a fresh ID, which is also returned.
func (r *Relation) Insert(t *Tuple) (TupleID, error) {
	if t.dim != r.dim {
		return 0, fmt.Errorf("constraint: tuple dimension %d != relation dimension %d", t.dim, r.dim)
	}
	if t.id != 0 {
		return 0, fmt.Errorf("constraint: tuple %d already belongs to a relation", t.id)
	}
	t.id = r.nextID
	r.nextID++
	r.tuples[t.id] = t
	r.order = append(r.order, t.id)
	return t.id, nil
}

// InsertWithID adds a tuple under a specific id — used when restoring a
// persisted relation, so references from saved indexes stay valid. The id
// must be unused; the internal id counter advances past it.
func (r *Relation) InsertWithID(t *Tuple, id TupleID) error {
	if t.dim != r.dim {
		return fmt.Errorf("constraint: tuple dimension %d != relation dimension %d", t.dim, r.dim)
	}
	if t.id != 0 {
		return fmt.Errorf("constraint: tuple %d already belongs to a relation", t.id)
	}
	if id == 0 {
		return fmt.Errorf("constraint: id 0 is reserved")
	}
	if _, ok := r.tuples[id]; ok {
		return fmt.Errorf("constraint: id %d already in use", id)
	}
	t.id = id
	r.tuples[id] = t
	r.order = append(r.order, id)
	if id >= r.nextID {
		r.nextID = id + 1
	}
	return nil
}

// Reattach re-inserts a tuple that already carries an id, undoing an
// earlier Delete — the rollback path of an aborted index commit. The id
// must not be in use.
func (r *Relation) Reattach(t *Tuple) error {
	if t.dim != r.dim {
		return fmt.Errorf("constraint: tuple dimension %d != relation dimension %d", t.dim, r.dim)
	}
	if t.id == 0 {
		return fmt.Errorf("constraint: Reattach of a tuple that never had an id")
	}
	if _, ok := r.tuples[t.id]; ok {
		return fmt.Errorf("constraint: id %d already in use", t.id)
	}
	r.tuples[t.id] = t
	r.order = append(r.order, t.id)
	if t.id >= r.nextID {
		r.nextID = t.id + 1
	}
	return nil
}

// Delete removes the tuple with the given id.
func (r *Relation) Delete(id TupleID) error {
	if _, ok := r.tuples[id]; !ok {
		return ErrNotFound
	}
	delete(r.tuples, id)
	for i, x := range r.order {
		if x == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return nil
}

// Get returns the tuple with the given id.
func (r *Relation) Get(id TupleID) (*Tuple, error) {
	t, ok := r.tuples[id]
	if !ok {
		return nil, ErrNotFound
	}
	return t, nil
}

// Scan calls fn for every tuple in insertion order; a false return stops
// the scan early.
func (r *Relation) Scan(fn func(*Tuple) bool) {
	for _, id := range r.order {
		if t, ok := r.tuples[id]; ok {
			if !fn(t) {
				return
			}
		}
	}
}

// IDs returns all tuple ids in insertion order.
func (r *Relation) IDs() []TupleID {
	return append([]TupleID(nil), r.order...)
}
