package constraint

import (
	"fmt"
	"math"
	"sort"

	"dualcdb/internal/geom"
)

// QueryKind distinguishes the two selection types of the paper.
type QueryKind int

const (
	// EXIST retrieves tuples whose extension intersects the query extension.
	EXIST QueryKind = iota
	// ALL retrieves tuples whose extension is contained in the query extension.
	ALL
)

// String renders the kind.
func (k QueryKind) String() string {
	if k == ALL {
		return "ALL"
	}
	return "EXIST"
}

// Query is a half-plane selection Q(x_d θ b1·x1 + … + b_{d−1}·x_{d−1} + b_d)
// with Q ∈ {ALL, EXIST} — the query class the paper's index supports.
type Query struct {
	Kind      QueryKind
	Slope     []float64 // b1..b_{d−1}
	Intercept float64   // b_d
	Op        geom.Op   // θ
}

// NewQuery builds a query, copying the slope slice.
func NewQuery(kind QueryKind, slope []float64, intercept float64, op geom.Op) Query {
	return Query{Kind: kind, Slope: append([]float64(nil), slope...), Intercept: intercept, Op: op}
}

// Query2 builds the 2-D query Q(y θ a·x + b).
func Query2(kind QueryKind, a, b float64, op geom.Op) Query {
	return Query{Kind: kind, Slope: []float64{a}, Intercept: b, Op: op}
}

// Dim returns the dimension of the query's variable space.
func (q Query) Dim() int { return len(q.Slope) + 1 }

// HalfSpace returns the query half-plane as a geometric half-space.
func (q Query) HalfSpace() geom.HalfSpace {
	return geom.FromSlopeForm(q.Slope, q.Intercept, q.Op)
}

// String renders the query, e.g. "EXIST(y >= 2x + 1)".
func (q Query) String() string {
	if q.Dim() == 2 {
		return fmt.Sprintf("%s(y %s %gx + %g)", q.Kind, q.Op, q.Slope[0], q.Intercept)
	}
	return fmt.Sprintf("%s(x%d %s %v·x + %g)", q.Kind, q.Dim(), q.Op, q.Slope, q.Intercept)
}

// Matches reports whether tuple t satisfies the selection, implementing
// Proposition 2.2 exactly:
//
//	ALL(q(≥), t)   ⇔ b_d ≤ BOT^P(slope)
//	ALL(q(≤), t)   ⇔ b_d ≥ TOP^P(slope)
//	EXIST(q(≥), t) ⇔ b_d ≤ TOP^P(slope)
//	EXIST(q(≤), t) ⇔ b_d ≥ BOT^P(slope)
//
// Empty tuples match nothing (their TOP is −Inf and BOT is +Inf, which
// makes the ALL comparisons vacuously true; we exclude them explicitly —
// an unsatisfiable tuple denotes no points and is not "contained" in any
// useful sense for retrieval).
func (q Query) Matches(t *Tuple) (bool, error) {
	if t.Dim() != q.Dim() {
		return false, fmt.Errorf("constraint: query dimension %d != tuple dimension %d", q.Dim(), t.Dim())
	}
	ext, err := t.Extension()
	if err != nil {
		return false, err
	}
	if ext.IsEmpty() {
		return false, nil
	}
	switch {
	case q.Kind == ALL && q.Op == geom.GE:
		return q.Intercept <= ext.Bot(q.Slope)+geom.Eps, nil
	case q.Kind == ALL && q.Op == geom.LE:
		return q.Intercept >= ext.Top(q.Slope)-geom.Eps, nil
	case q.Kind == EXIST && q.Op == geom.GE:
		return q.Intercept <= ext.Top(q.Slope)+geom.Eps, nil
	default: // EXIST, LE
		return q.Intercept >= ext.Bot(q.Slope)-geom.Eps, nil
	}
}

// Eval runs the selection over a whole relation by exhaustive scan,
// returning matching tuple ids in ascending order. This is the ground
// truth the indexes are validated against, and the "no index" baseline.
func (q Query) Eval(r *Relation) ([]TupleID, error) {
	var out []TupleID
	var scanErr error
	r.Scan(func(t *Tuple) bool {
		ok, err := q.Matches(t)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			out = append(out, t.ID())
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// TupleALL reports whether ext(t) ⊆ ext(q) for two generalized tuples:
// containment holds iff every constraint of q contains ext(t), which the
// support function decides exactly. Empty t is reported as not contained
// (consistent with Query.Matches).
func TupleALL(q, t *Tuple) (bool, error) {
	text, err := t.Extension()
	if err != nil {
		return false, err
	}
	if text.IsEmpty() {
		return false, nil
	}
	for _, h := range q.Constraints() {
		// ext(t) ⊆ {x: a·x + c ≤ 0} ⇔ sup_{x∈t}(a·x) ≤ −c.
		a := geom.Point(h.A)
		if h.Op == geom.LE {
			if text.Support(a) > -h.C+geom.Eps {
				return false, nil
			}
		} else {
			if -text.Support(a.Scale(-1)) < -h.C-geom.Eps {
				return false, nil
			}
		}
	}
	return true, nil
}

// TupleEXIST reports whether ext(t) ∩ ext(q) is non-empty, by testing the
// satisfiability of the combined constraint conjunction. Two fast paths
// short-circuit the vertex enumeration: disjoint bounding boxes prove
// emptiness, and a generator point of one polyhedron inside the other
// proves non-emptiness.
func TupleEXIST(q, t *Tuple) (bool, error) {
	if q.Dim() != t.Dim() {
		return false, fmt.Errorf("constraint: dimension mismatch %d vs %d", q.Dim(), t.Dim())
	}
	qext, err := q.Extension()
	if err != nil {
		return false, err
	}
	text, err := t.Extension()
	if err != nil {
		return false, err
	}
	if qext.IsEmpty() || text.IsEmpty() {
		return false, nil
	}
	qlo, qhi, err1 := qext.MBR()
	tlo, thi, err2 := text.MBR()
	if err1 == nil && err2 == nil {
		for i := range qlo {
			if qhi[i] < tlo[i]-geom.Eps || thi[i] < qlo[i]-geom.Eps {
				return false, nil
			}
		}
	}
	for _, v := range text.Verts {
		if ok, err := qext.Contains(v); err == nil && ok {
			return true, nil
		}
	}
	for _, v := range qext.Verts {
		if ok, err := text.Contains(v); err == nil && ok {
			return true, nil
		}
	}
	combined := append(append([]geom.HalfSpace(nil), q.Constraints()...), t.Constraints()...)
	p, err := geom.FromHalfSpaces(combined, t.Dim())
	if err != nil {
		return false, err
	}
	return !p.IsEmpty(), nil
}

// Selectivity returns |result| / |relation| for the query, used by the
// workload generator to calibrate query intercepts.
func (q Query) Selectivity(r *Relation) (float64, error) {
	if r.Len() == 0 {
		return 0, nil
	}
	ids, err := q.Eval(r)
	if err != nil {
		return 0, err
	}
	return float64(len(ids)) / float64(r.Len()), nil
}

// SurfaceValue returns the tuple surface value the query compares against:
// TOP^P(slope) for EXIST(≥)/ALL(≤) queries and BOT^P(slope) for the other
// two — i.e. the key under which the tuple appears in the B⁺-tree that
// serves this query (Section 3 of the paper).
func (q Query) SurfaceValue(t *Tuple) (float64, error) {
	ext, err := t.Extension()
	if err != nil {
		return 0, err
	}
	if ext.IsEmpty() {
		return math.NaN(), nil
	}
	if q.UsesTop() {
		return ext.Top(q.Slope), nil
	}
	return ext.Bot(q.Slope), nil
}

// UsesTop reports whether the query is answered from TOP^P values (the
// B^up tree): EXIST(≥) and ALL(≤).
func (q Query) UsesTop() bool {
	return (q.Kind == EXIST) == (q.Op == geom.GE)
}

// SweepsUp reports whether the answer set consists of values following b_d
// in increasing key order (an upward leaf sweep): ALL(≥) and EXIST(≥).
func (q Query) SweepsUp() bool {
	return q.Op == geom.GE
}
