package constraint

import (
	"math"
	"math/rand"
	"testing"

	"dualcdb/internal/geom"
)

func unitSquare(t *testing.T, x0, y0, side float64) *Tuple {
	t.Helper()
	cons := []geom.HalfSpace{
		geom.HalfPlane2(1, 0, -x0, geom.GE),
		geom.HalfPlane2(1, 0, -(x0 + side), geom.LE),
		geom.HalfPlane2(0, 1, -y0, geom.GE),
		geom.HalfPlane2(0, 1, -(y0 + side), geom.LE),
	}
	tp, err := NewTuple(2, cons)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestQueryMatchesSquare(t *testing.T) {
	sq := unitSquare(t, 0, 0, 1) // [0,1]²
	cases := []struct {
		q    Query
		want bool
	}{
		{Query2(EXIST, 0, 0.5, geom.GE), true},   // y ≥ 0.5 crosses the square
		{Query2(EXIST, 0, 2, geom.GE), false},    // y ≥ 2 misses it
		{Query2(EXIST, 0, -1, geom.LE), false},   // y ≤ −1 misses it
		{Query2(ALL, 0, -0.5, geom.GE), true},    // square ⊆ {y ≥ −0.5}
		{Query2(ALL, 0, 0.5, geom.GE), false},    // square ⊄ {y ≥ 0.5}
		{Query2(ALL, 0, 1.5, geom.LE), true},     // square ⊆ {y ≤ 1.5}
		{Query2(ALL, 1, 0.001, geom.LE), false},  // y ≤ x + 0.001 cuts the square
		{Query2(EXIST, 1, 0.5, geom.GE), true},   // y ≥ x + 0.5 crosses it
		{Query2(ALL, -1, 2.0001, geom.LE), true}, // y ≤ −x + 2.0001 contains it
	}
	for _, c := range cases {
		got, err := c.q.Matches(sq)
		if err != nil {
			t.Fatalf("%v: %v", c.q, err)
		}
		if got != c.want {
			t.Errorf("%v on unit square = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQueryMatchesAgainstSampling(t *testing.T) {
	// Cross-validate Proposition 2.2 against brute-force point sampling.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		x0, y0 := rng.Float64()*20-10, rng.Float64()*20-10
		side := rng.Float64()*4 + 0.2
		sq := unitSquare(t, x0, y0, side)
		a := rng.NormFloat64() * 2
		b := rng.NormFloat64() * 10
		op := geom.GE
		if rng.Intn(2) == 0 {
			op = geom.LE
		}
		h := geom.FromSlopeForm([]float64{a}, b, op)
		// Sample a grid of points of the square.
		allIn, anyIn := true, false
		for i := 0; i <= 8; i++ {
			for j := 0; j <= 8; j++ {
				p := geom.Pt2(x0+side*float64(i)/8, y0+side*float64(j)/8)
				if h.ContainsStrict(p) {
					anyIn = true
				} else if !h.Contains(p) {
					allIn = false
				}
			}
		}
		gotAll, err := Query{Kind: ALL, Slope: []float64{a}, Intercept: b, Op: op}.Matches(sq)
		if err != nil {
			t.Fatal(err)
		}
		gotExist, err := Query{Kind: EXIST, Slope: []float64{a}, Intercept: b, Op: op}.Matches(sq)
		if err != nil {
			t.Fatal(err)
		}
		// Sampling gives one-sided evidence (corners are in the grid, so for
		// a convex object vs a half-plane the grid verdicts are exact up to
		// boundary ties, which we skip).
		if allIn && !gotAll {
			t.Fatalf("grid fully inside but ALL=false: a=%v b=%v op=%v sq=(%v,%v,%v)", a, b, op, x0, y0, side)
		}
		if anyIn && !gotExist {
			t.Fatalf("grid point strictly inside but EXIST=false: a=%v b=%v op=%v", a, b, op)
		}
		if !gotAll && gotExist {
			// fine: intersects but not contained
		}
		if gotAll && !gotExist {
			t.Fatalf("ALL implies EXIST for non-empty tuples: a=%v b=%v op=%v", a, b, op)
		}
	}
}

func TestQueryEvalGroundTruth(t *testing.T) {
	r := NewRelation(2)
	low, _ := r.Insert(unitSquare(t, 0, 0, 1))  // y ∈ [0,1]
	mid, _ := r.Insert(unitSquare(t, 0, 2, 1))  // y ∈ [2,3]
	high, _ := r.Insert(unitSquare(t, 0, 4, 1)) // y ∈ [4,5]
	q := Query2(ALL, 0, 1.5, geom.GE)           // y ≥ 1.5 contains mid and high
	ids, err := q.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != mid || ids[1] != high {
		t.Fatalf("ALL(y≥1.5) = %v, want [%d %d]", ids, mid, high)
	}
	q2 := Query2(EXIST, 0, 0.5, geom.LE) // y ≤ 0.5 intersects only low
	ids, err = q2.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != low {
		t.Fatalf("EXIST(y≤0.5) = %v, want [%d]", ids, low)
	}
}

func TestQueryUnsatisfiableTupleNeverMatches(t *testing.T) {
	tp := mustTuple(t, "x >= 1 && x <= 0")
	for _, q := range []Query{
		Query2(ALL, 0, 0, geom.GE), Query2(ALL, 0, 0, geom.LE),
		Query2(EXIST, 0, 0, geom.GE), Query2(EXIST, 0, 0, geom.LE),
	} {
		ok, err := q.Matches(tp)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("%v matched an unsatisfiable tuple", q)
		}
	}
}

func TestQueryUnboundedTuple(t *testing.T) {
	// Upper half-plane tuple y ≥ 3.
	tp := mustTuple(t, "y >= 3")
	// EXIST(y ≥ anything) holds: tuple reaches arbitrarily high.
	if ok, _ := Query2(EXIST, 2, 100, geom.GE).Matches(tp); !ok {
		t.Error("unbounded tuple must intersect any upward half-plane")
	}
	// ALL(y ≥ 3) holds (equal sets), ALL(y ≥ 3.5) does not.
	if ok, _ := Query2(ALL, 0, 3, geom.GE).Matches(tp); !ok {
		t.Error("ALL(y≥3) should contain the tuple y≥3")
	}
	if ok, _ := Query2(ALL, 0, 3.5, geom.GE).Matches(tp); ok {
		t.Error("ALL(y≥3.5) should not contain the tuple y≥3")
	}
	// ALL(y ≤ c) never holds for an upward-unbounded tuple.
	if ok, _ := Query2(ALL, 0, 1e9, geom.LE).Matches(tp); ok {
		t.Error("upward-unbounded tuple cannot be below any line")
	}
}

func TestTupleALLAndEXIST(t *testing.T) {
	inner := unitSquare(t, 1, 1, 1)
	outer := unitSquare(t, 0, 0, 3)
	apart := unitSquare(t, 10, 10, 1)

	if ok, err := TupleALL(outer, inner); err != nil || !ok {
		t.Fatalf("inner ⊆ outer: %v %v", ok, err)
	}
	if ok, _ := TupleALL(inner, outer); ok {
		t.Fatal("outer ⊄ inner")
	}
	if ok, err := TupleEXIST(outer, inner); err != nil || !ok {
		t.Fatalf("inner ∩ outer ≠ ∅: %v %v", ok, err)
	}
	if ok, _ := TupleEXIST(apart, inner); ok {
		t.Fatal("disjoint squares must not intersect")
	}
	// Touching squares intersect (closed sets).
	touch := unitSquare(t, 2, 1, 1) // shares the edge x=2 with inner
	if ok, _ := TupleEXIST(touch, inner); !ok {
		t.Fatal("edge-sharing squares intersect")
	}
}

func TestSurfaceValueAndRouting(t *testing.T) {
	sq := unitSquare(t, 0, 0, 1)
	// EXIST(≥) uses TOP and sweeps up; ALL(≥) uses BOT and sweeps up.
	qe := Query2(EXIST, 0, 0.5, geom.GE)
	if !qe.UsesTop() || !qe.SweepsUp() {
		t.Error("EXIST(≥) routes to B^up, upward sweep")
	}
	v, err := qe.SurfaceValue(sq)
	if err != nil || math.Abs(v-1) > 1e-9 {
		t.Errorf("TOP(0) of unit square = %v, want 1", v)
	}
	qa := Query2(ALL, 0, 0.5, geom.GE)
	if qa.UsesTop() || !qa.SweepsUp() {
		t.Error("ALL(≥) routes to B^down, upward sweep")
	}
	v, err = qa.SurfaceValue(sq)
	if err != nil || math.Abs(v) > 1e-9 {
		t.Errorf("BOT(0) of unit square = %v, want 0", v)
	}
	qal := Query2(ALL, 0, 0.5, geom.LE)
	if !qal.UsesTop() || qal.SweepsUp() {
		t.Error("ALL(≤) routes to B^up, downward sweep")
	}
	qel := Query2(EXIST, 0, 0.5, geom.LE)
	if qel.UsesTop() || qel.SweepsUp() {
		t.Error("EXIST(≤) routes to B^down, downward sweep")
	}
}

func TestSelectivity(t *testing.T) {
	r := NewRelation(2)
	for i := 0; i < 10; i++ {
		_, _ = r.Insert(unitSquare(t, 0, float64(2*i), 1))
	}
	// y ≥ 9.5: squares with y-range above 9.5 entirely: those at y0=10..18 → 5 of 10.
	sel, err := Query2(ALL, 0, 9.5, geom.GE).Selectivity(r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel-0.5) > 1e-9 {
		t.Fatalf("selectivity = %v, want 0.5", sel)
	}
}
