package constraint

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"

	"dualcdb/internal/geom"
)

// This file implements a small textual syntax for generalized tuples:
//
//	tuple      := constraint { ("&&" | "," | "and") constraint }
//	constraint := linexpr cmp linexpr
//	cmp        := "<=" | ">=" | "=" | "==" | "<" | ">"
//	linexpr    := ["+"|"-"] term { ("+"|"-") term }
//	term       := number ["*"] [var] | var
//	var        := "x" | "y" | "z" | "w" | "x1" .. "x9"
//
// Examples: "x >= 0 && y >= 0 && x + y <= 4",  "y = 2x + 1",
// "3*x1 - x2 <= 5, x2 >= 1".
//
// Equalities expand into two opposite inequalities (Section 2 of the
// paper); strict comparisons are treated as their closed counterparts
// (the paper's footnote 2 notes the extension to strict operators is
// straightforward — for the index structures only closed predicates
// matter, since the stored surface values are identical).

var varNames = []string{"x", "y", "z", "w"}

// varIndex resolves a variable token to a zero-based coordinate index.
func varIndex(name string, dim int) (int, error) {
	for i, v := range varNames {
		if name == v && i < dim {
			return i, nil
		}
	}
	if len(name) >= 2 && name[0] == 'x' {
		if n, err := strconv.Atoi(name[1:]); err == nil && n >= 1 && n <= dim {
			return n - 1, nil
		}
	}
	return 0, fmt.Errorf("constraint: unknown variable %q in dimension %d", name, dim)
}

// varName renders the coordinate index as a variable token.
func varName(i, dim int) string {
	if dim <= len(varNames) {
		return varNames[i]
	}
	return fmt.Sprintf("x%d", i+1)
}

type token struct {
	kind rune // 'n' number, 'v' var, or the literal punctuation rune
	text string
	num  float64
}

func tokenize(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '+' || c == '-' || c == '*' || c == ',':
			toks = append(toks, token{kind: c, text: string(c)})
			i++
		case c == '&':
			if i+1 < len(s) && s[i+1] == '&' {
				toks = append(toks, token{kind: ',', text: "&&"})
				i += 2
			} else {
				return nil, fmt.Errorf("constraint: stray '&' at offset %d", i)
			}
		case c == '<' || c == '>' || c == '=':
			op := string(c)
			if i+1 < len(s) && s[i+1] == '=' {
				op += "="
				i++
			}
			i++
			toks = append(toks, token{kind: 'c', text: op})
		case unicode.IsDigit(c) || c == '.':
			j := i
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == '.' || s[j] == 'e' || s[j] == 'E' ||
				((s[j] == '+' || s[j] == '-') && j > i && (s[j-1] == 'e' || s[j-1] == 'E'))) {
				j++
			}
			n, err := strconv.ParseFloat(s[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("constraint: bad number %q: %v", s[i:j], err)
			}
			toks = append(toks, token{kind: 'n', text: s[i:j], num: n})
			i = j
		case unicode.IsLetter(c):
			j := i
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j]))) {
				j++
			}
			word := s[i:j]
			if word == "and" || word == "AND" {
				toks = append(toks, token{kind: ',', text: word})
			} else {
				toks = append(toks, token{kind: 'v', text: word})
			}
			i = j
		default:
			return nil, fmt.Errorf("constraint: unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
	dim  int
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

// linExpr parses a linear expression, returning per-variable coefficients
// and the constant term.
func (p *parser) linExpr() ([]float64, float64, error) {
	coef := make([]float64, p.dim)
	var c float64
	sign := 1.0
	expectTerm := true
	for {
		t, ok := p.peek()
		if !ok || t.kind == ',' || t.kind == 'c' {
			if expectTerm {
				return nil, 0, fmt.Errorf("constraint: expression ends where a term is expected")
			}
			return coef, c, nil
		}
		switch t.kind {
		case '+':
			if expectTerm {
				return nil, 0, fmt.Errorf("constraint: unexpected '+'")
			}
			sign = 1
			expectTerm = true
			p.next()
		case '-':
			if expectTerm {
				sign = -sign // unary minus
			} else {
				sign = -1
			}
			expectTerm = true
			p.next()
		case 'n':
			p.next()
			val := sign * t.num
			// Optional '*' and/or variable follows.
			if nt, ok := p.peek(); ok && nt.kind == '*' {
				p.next()
				vt, ok := p.next()
				if !ok || vt.kind != 'v' {
					return nil, 0, fmt.Errorf("constraint: '*' must be followed by a variable")
				}
				idx, err := varIndex(vt.text, p.dim)
				if err != nil {
					return nil, 0, err
				}
				coef[idx] += val
			} else if nt, ok := p.peek(); ok && nt.kind == 'v' {
				p.next()
				idx, err := varIndex(nt.text, p.dim)
				if err != nil {
					return nil, 0, err
				}
				coef[idx] += val
			} else {
				c += val
			}
			sign = 1
			expectTerm = false
		case 'v':
			p.next()
			idx, err := varIndex(t.text, p.dim)
			if err != nil {
				return nil, 0, err
			}
			coef[idx] += sign
			sign = 1
			expectTerm = false
		default:
			return nil, 0, fmt.Errorf("constraint: unexpected token %q", t.text)
		}
	}
}

// ParseConstraints parses the textual tuple syntax into normalized
// half-space constraints over E^dim.
func ParseConstraints(s string, dim int) ([]geom.HalfSpace, error) {
	toks, err := tokenize(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, dim: dim}
	var out []geom.HalfSpace
	for {
		lhsCoef, lhsC, err := p.linExpr()
		if err != nil {
			return nil, err
		}
		ct, ok := p.next()
		if !ok || ct.kind != 'c' {
			return nil, fmt.Errorf("constraint: expected comparison operator")
		}
		rhsCoef, rhsC, err := p.linExpr()
		if err != nil {
			return nil, err
		}
		// Normalize to (lhs − rhs) θ 0.
		a := make([]float64, dim)
		for i := range a {
			a[i] = lhsCoef[i] - rhsCoef[i]
		}
		c := lhsC - rhsC
		// Individual literals are range-checked by ParseFloat, but summing
		// terms ("9e307x + 9e307x") can still overflow; a non-finite
		// coefficient would poison every surface computation downstream.
		for _, v := range append(append([]float64(nil), a...), c) {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				return nil, fmt.Errorf("constraint: non-finite coefficient %g after combining terms", v)
			}
		}
		switch ct.text {
		case "<=", "<":
			out = append(out, geom.HalfSpace{A: a, C: c, Op: geom.LE})
		case ">=", ">":
			out = append(out, geom.HalfSpace{A: a, C: c, Op: geom.GE})
		case "=", "==":
			out = append(out,
				geom.HalfSpace{A: append([]float64(nil), a...), C: c, Op: geom.LE},
				geom.HalfSpace{A: a, C: c, Op: geom.GE})
		default:
			return nil, fmt.Errorf("constraint: unknown operator %q", ct.text)
		}
		sep, ok := p.next()
		if !ok {
			return out, nil
		}
		if sep.kind != ',' {
			return nil, fmt.Errorf("constraint: expected '&&' or ',', got %q", sep.text)
		}
	}
}

// ParseTuple parses a generalized tuple from the textual syntax.
func ParseTuple(s string, dim int) (*Tuple, error) {
	cons, err := ParseConstraints(s, dim)
	if err != nil {
		return nil, err
	}
	return NewTuple(dim, cons)
}

// formatConstraint renders one half-space as "2x + 3y <= 4": variable terms
// on the left, the constant moved to the right-hand side.
func formatConstraint(h geom.HalfSpace) string {
	var sb strings.Builder
	dim := h.Dim()
	wrote := false
	for i, a := range h.A {
		if a == 0 {
			continue
		}
		switch {
		case !wrote && a == 1: //dualvet:allow floatcmp — formatting elides the coefficient only when it is exactly ±1
			sb.WriteString(varName(i, dim))
		case !wrote && a == -1: //dualvet:allow floatcmp — formatting elides the coefficient only when it is exactly ±1
			sb.WriteString("-" + varName(i, dim))
		case !wrote:
			fmt.Fprintf(&sb, "%g%s", a, varName(i, dim))
		case a == 1: //dualvet:allow floatcmp — formatting elides the coefficient only when it is exactly ±1
			sb.WriteString(" + " + varName(i, dim))
		case a == -1: //dualvet:allow floatcmp — formatting elides the coefficient only when it is exactly ±1
			sb.WriteString(" - " + varName(i, dim))
		case a > 0:
			fmt.Fprintf(&sb, " + %g%s", a, varName(i, dim))
		default:
			fmt.Fprintf(&sb, " - %g%s", -a, varName(i, dim))
		}
		wrote = true
	}
	if !wrote {
		sb.WriteString("0")
	}
	fmt.Fprintf(&sb, " %s %g", h.Op, -h.C)
	return sb.String()
}

// FormatConstraint renders a half-space in the parseable textual syntax.
func FormatConstraint(h geom.HalfSpace) string { return formatConstraint(h) }
