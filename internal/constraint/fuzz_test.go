package constraint

import (
	"testing"
)

// FuzzParser throws arbitrary input at the tuple parser. It must never
// panic, and every tuple it accepts must render through String() back into
// text the parser accepts again, with the same number of constraints — the
// persistence layer relies on that round trip.
func FuzzParser(f *testing.F) {
	f.Add("x <= 4, y >= 2", uint8(2))
	f.Add("2x + 3y <= 4", uint8(2))
	f.Add("x0 - 2 = 7", uint8(2))
	f.Add("y = 2x + 1", uint8(2))
	f.Add("x + y + z <= 1", uint8(3))
	f.Add("-x < -0.5 && y > 1e3", uint8(2))
	f.Add("3*x1 - x2 <= 5 and x2 >= 1", uint8(2))
	f.Add("9e307x + 9e307x <= 0", uint8(1))
	f.Fuzz(func(t *testing.T, s string, dimRaw uint8) {
		dim := int(dimRaw)%4 + 1
		tup, err := ParseTuple(s, dim)
		if err != nil {
			return
		}
		text := tup.String()
		back, err := ParseTuple(text, dim)
		if err != nil {
			t.Fatalf("accepted %q but re-parsing its rendering %q failed: %v", s, text, err)
		}
		if got, want := len(back.Constraints()), len(tup.Constraints()); got != want {
			t.Fatalf("round trip of %q via %q changed constraint count %d -> %d", s, text, want, got)
		}
	})
}
